//! Sequence-pair floorplans (Murata et al., ICCAD 1995).
//!
//! A sequence pair `(Γ⁺, Γ⁻)` — two permutations of the modules —
//! encodes *non-slicing* floorplans: module `a` is left of `b` when `a`
//! precedes `b` in both sequences, and above `b` when `a` precedes `b`
//! in `Γ⁺` but follows it in `Γ⁻`. Every pair of modules is related one
//! way or the other, so longest-path evaluation yields an overlap-free
//! compacted placement.
//!
//! The paper's floorplanner is slicing (Polish expressions); sequence
//! pairs are included because the congestion models are
//! representation-agnostic and non-slicing floorplans are the harder,
//! more general case a production library must serve. The
//! representation-comparison ablation quantifies the difference.

use irgrid_geom::{Point, Rect, Um};
use irgrid_netlist::{Circuit, ModuleId};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{FloorplanRepr, Placement};

/// A sequence-pair encoding plus per-module orientations.
///
/// # Examples
///
/// ```
/// use irgrid_floorplan::{FloorplanRepr, SequencePair};
/// use irgrid_geom::Um;
/// use irgrid_netlist::{Circuit, Module};
///
/// let circuit = Circuit::new(
///     "sp",
///     vec![
///         Module::new("a", Um(30), Um(10))?,
///         Module::new("b", Um(10), Um(40))?,
///     ],
///     vec![],
/// )?;
/// let sp = SequencePair::initial(2);
/// let placement = sp.place(&circuit);
/// assert!(placement.check_consistency().is_none());
/// # Ok::<(), irgrid_netlist::BuildCircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SequencePair {
    /// Γ⁺ as module ids.
    pos: Vec<ModuleId>,
    /// Γ⁻ as module ids.
    neg: Vec<ModuleId>,
    /// Whether each module is rotated 90°.
    rotated: Vec<bool>,
}

impl SequencePair {
    /// The identity pair: all modules in one row, unrotated.
    ///
    /// # Panics
    ///
    /// Panics if `module_count` is zero.
    #[must_use]
    pub fn new_identity(module_count: usize) -> SequencePair {
        assert!(module_count > 0, "need at least one module");
        let ids: Vec<ModuleId> = (0..module_count).map(|i| ModuleId(i as u32)).collect();
        SequencePair {
            pos: ids.clone(),
            neg: ids,
            rotated: vec![false; module_count],
        }
    }

    /// Γ⁺.
    #[must_use]
    pub fn positive(&self) -> &[ModuleId] {
        &self.pos
    }

    /// Γ⁻.
    #[must_use]
    pub fn negative(&self) -> &[ModuleId] {
        &self.neg
    }

    /// Whether module `id` is rotated.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn is_rotated(&self, id: ModuleId) -> bool {
        self.rotated[id.index()]
    }

    /// Checks that both sequences are permutations of the same module
    /// set.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let n = self.pos.len();
        if self.neg.len() != n || self.rotated.len() != n || n == 0 {
            return false;
        }
        let mut seen_pos = vec![false; n];
        let mut seen_neg = vec![false; n];
        for i in 0..n {
            let (p, q) = (self.pos[i].index(), self.neg[i].index());
            if p >= n || q >= n || seen_pos[p] || seen_neg[q] {
                return false;
            }
            seen_pos[p] = true;
            seen_neg[q] = true;
        }
        true
    }

    /// The three classic moves: swap a random adjacent pair in Γ⁺ only;
    /// swap a random pair in both sequences; toggle one module's
    /// rotation.
    fn apply_random_move<R: Rng>(&mut self, rng: &mut R) {
        let n = self.pos.len();
        if n == 1 {
            self.rotated[0] ^= true;
            return;
        }
        match rng.gen_range(0..3) {
            0 => {
                let i = rng.gen_range(0..n - 1);
                self.pos.swap(i, i + 1);
            }
            1 => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                let (ma, mb) = (self.pos[a], self.pos[b]);
                self.pos.swap(a, b);
                // irgrid-lint: allow(P1): pos and neg are permutations of the same module set
                let ia = self.neg.iter().position(|&m| m == ma).expect("permutation");
                // irgrid-lint: allow(P1): pos and neg are permutations of the same module set
                let ib = self.neg.iter().position(|&m| m == mb).expect("permutation");
                self.neg.swap(ia, ib);
            }
            _ => {
                let i = rng.gen_range(0..n);
                self.rotated[i] ^= true;
            }
        }
        debug_assert!(self.is_valid());
    }

    /// Evaluates the pair into module rectangles via longest paths.
    fn evaluate(&self, circuit: &Circuit) -> Placement {
        assert_eq!(
            self.pos.len(),
            circuit.modules().len(),
            "sequence pair and circuit disagree on module count"
        );
        let n = self.pos.len();
        // Module dims under the chosen orientations.
        let dims: Vec<(Um, Um)> = (0..n)
            .map(|i| {
                let m = circuit.module(ModuleId(i as u32));
                if self.rotated[i] {
                    (m.height(), m.width())
                } else {
                    (m.width(), m.height())
                }
            })
            .collect();
        // Position of each module in each sequence.
        let mut pos_index = vec![0usize; n];
        let mut neg_index = vec![0usize; n];
        for (i, &m) in self.pos.iter().enumerate() {
            pos_index[m.index()] = i;
        }
        for (i, &m) in self.neg.iter().enumerate() {
            neg_index[m.index()] = i;
        }

        // a left-of b  <=> a before b in both sequences.
        // a above b    <=> a before b in Γ+ and after b in Γ-,
        //                  i.e. b below a; equivalently b left-of/below
        //                  relations partition all pairs.
        //
        // x: longest path over left-of, processed in Γ+ order (a
        // left-of b implies a earlier in Γ+).
        let mut x = vec![Um::ZERO; n];
        for (i, &mb) in self.pos.iter().enumerate() {
            let b = mb.index();
            for &ma in &self.pos[..i] {
                let a = ma.index();
                if neg_index[a] < neg_index[b] {
                    x[b] = x[b].max(x[a] + dims[a].0);
                }
            }
        }
        // y: a above b => y[a] >= y[b] + h[b]. Process Γ+ in reverse so
        // b (later in Γ+) is finished before a.
        let mut y = vec![Um::ZERO; n];
        for (i, &ma) in self.pos.iter().enumerate().rev() {
            let a = ma.index();
            for &mb in &self.pos[i + 1..] {
                let b = mb.index();
                if neg_index[a] > neg_index[b] {
                    y[a] = y[a].max(y[b] + dims[b].1);
                }
            }
        }

        let rects: Vec<Rect> = (0..n)
            .map(|i| Rect::from_origin_size(Point::new(x[i], y[i]), dims[i].0, dims[i].1))
            .collect();
        // irgrid-lint: allow(P1): the constructor rejects empty module lists
        let chip_w = rects.iter().map(|r| r.ur().x).max().expect("non-empty");
        // irgrid-lint: allow(P1): the constructor rejects empty module lists
        let chip_h = rects.iter().map(|r| r.ur().y).max().expect("non-empty");
        let chip = Rect::from_origin_size(Point::ORIGIN, chip_w, chip_h);
        Placement::from_parts(rects, self.rotated.clone(), chip)
    }
}

impl FloorplanRepr for SequencePair {
    fn initial(module_count: usize) -> SequencePair {
        SequencePair::new_identity(module_count)
    }

    fn perturb<R: Rng>(&mut self, rng: &mut R) {
        self.apply_random_move(rng);
    }

    fn place(&self, circuit: &Circuit) -> Placement {
        self.evaluate(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irgrid_netlist::Module;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn circuit(dims: &[(i64, i64)]) -> Circuit {
        let modules = dims
            .iter()
            .enumerate()
            .map(|(i, &(w, h))| Module::new(format!("m{i}"), Um(w), Um(h)).expect("valid"))
            .collect();
        Circuit::new("sp", modules, vec![]).expect("valid circuit")
    }

    #[test]
    fn identity_pair_is_one_row() {
        let c = circuit(&[(10, 20), (30, 10), (5, 5)]);
        let p = SequencePair::new_identity(3).place(&c);
        assert!(p.check_consistency().is_none());
        assert_eq!(p.chip().width(), Um(45), "widths add in a row");
        assert_eq!(p.chip().height(), Um(20), "height is the max");
        assert_eq!(p.module_rect(ModuleId(1)).ll().x, Um(10));
    }

    #[test]
    fn reversed_negative_stacks_vertically() {
        // Γ+ = (0, 1), Γ- = (1, 0): 0 precedes 1 in Γ+ and follows in
        // Γ-... 0 before 1 in pos, 0 after 1 in neg -> 0 above 1.
        let c = circuit(&[(10, 20), (30, 10)]);
        let sp = SequencePair {
            pos: vec![ModuleId(0), ModuleId(1)],
            neg: vec![ModuleId(1), ModuleId(0)],
            rotated: vec![false, false],
        };
        assert!(sp.is_valid());
        let p = sp.place(&c);
        assert!(p.check_consistency().is_none());
        assert_eq!(p.chip().width(), Um(30));
        assert_eq!(p.chip().height(), Um(30), "heights add in a stack");
        // Module 0 sits above module 1.
        assert_eq!(p.module_rect(ModuleId(0)).ll().y, Um(10));
        assert_eq!(p.module_rect(ModuleId(1)).ll().y, Um(0));
    }

    #[test]
    fn all_random_pairs_pack_without_overlap() {
        let c = circuit(&[(10, 30), (25, 15), (40, 5), (12, 12), (7, 21), (18, 9)]);
        let mut sp = SequencePair::new_identity(6);
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        for step in 0..300 {
            FloorplanRepr::perturb(&mut sp, &mut rng);
            assert!(sp.is_valid(), "step {step}");
            let p = sp.place(&c);
            assert!(
                p.check_consistency().is_none(),
                "step {step}: {:?}",
                p.check_consistency()
            );
            assert!(p.area() >= c.total_module_area());
        }
    }

    #[test]
    fn rotation_tracks_into_placement() {
        let c = circuit(&[(10, 20)]);
        let mut sp = SequencePair::new_identity(1);
        sp.rotated[0] = true;
        let p = sp.place(&c);
        assert!(p.is_rotated(ModuleId(0)));
        assert_eq!(p.module_rect(ModuleId(0)).width(), Um(20));
    }

    #[test]
    fn sequence_pairs_reach_non_slicing_floorplans() {
        // The classic pinwheel is non-slicing; verify a sequence pair
        // produces a compacted placement a slicing tree cannot: five
        // modules in a pinwheel around a center. We only check that some
        // perturbed pair beats the best *row/column* arrangement, which
        // suffices to show the representation explores 2-D packings.
        let c = circuit(&[(20, 10), (10, 20), (20, 10), (10, 20), (10, 10)]);
        let mut sp = SequencePair::new_identity(5);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut best = sp.place(&c).area();
        for _ in 0..2000 {
            FloorplanRepr::perturb(&mut sp, &mut rng);
            best = best.min(sp.place(&c).area());
        }
        // Total module area is 900; a perfect pinwheel packs 30x30 = 900.
        assert!(
            best.0 <= 1100,
            "best area {best} too far from the pinwheel optimum"
        );
    }

    #[test]
    fn is_valid_rejects_corrupt_pairs() {
        let mut sp = SequencePair::new_identity(3);
        sp.neg[0] = ModuleId(9);
        assert!(!sp.is_valid());
        let mut sp = SequencePair::new_identity(3);
        sp.pos[0] = sp.pos[1];
        assert!(!sp.is_valid());
    }

    #[test]
    #[should_panic(expected = "disagree on module count")]
    fn place_rejects_mismatch() {
        let c = circuit(&[(10, 10)]);
        let _ = SequencePair::new_identity(2).place(&c);
    }
}
