//! The floorplan-representation abstraction.
//!
//! The congestion models only see a [`Placement`]; how module positions
//! are encoded and perturbed is orthogonal. The paper uses normalized
//! Polish expressions (slicing floorplans); this trait lets the annealer
//! drive any representation — the workspace also ships sequence pairs
//! ([`SequencePair`](crate::SequencePair)), which cover non-slicing
//! floorplans.

use irgrid_netlist::Circuit;
use rand::Rng;

use crate::{pack, Placement, PolishExpr};

/// A perturbable encoding of a floorplan.
pub trait FloorplanRepr: Clone {
    /// The canonical initial encoding for `module_count` modules.
    ///
    /// # Panics
    ///
    /// Panics if `module_count` is zero.
    fn initial(module_count: usize) -> Self;

    /// Applies one random perturbation move.
    fn perturb<R: Rng>(&mut self, rng: &mut R);

    /// Realizes the encoding as a packed placement of `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the encoding and circuit disagree on module count.
    fn place(&self, circuit: &Circuit) -> Placement;
}

impl FloorplanRepr for PolishExpr {
    fn initial(module_count: usize) -> PolishExpr {
        PolishExpr::initial(module_count)
    }

    fn perturb<R: Rng>(&mut self, rng: &mut R) {
        if self.operand_count() > 1 {
            self.perturb_random(rng);
        }
    }

    fn place(&self, circuit: &Circuit) -> Placement {
        pack(self, circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irgrid_netlist::generator::CircuitGenerator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn polish_expr_implements_repr() {
        let circuit = CircuitGenerator::new("r", 6, 0)
            .seed(1)
            .generate()
            .expect("valid");
        let mut repr = <PolishExpr as FloorplanRepr>::initial(6);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..20 {
            FloorplanRepr::perturb(&mut repr, &mut rng);
            let placement = repr.place(&circuit);
            assert!(placement.check_consistency().is_none());
        }
    }

    #[test]
    fn single_module_perturb_is_a_noop() {
        let mut repr = <PolishExpr as FloorplanRepr>::initial(1);
        let before = repr.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        FloorplanRepr::perturb(&mut repr, &mut rng);
        assert_eq!(repr, before);
    }
}
