//! Pin placement: the intersection-to-intersection scheme.
//!
//! Following Sham & Young (ISPD 2002), which the paper adopts (§2, §5),
//! pins are placed on routing-grid intersections once module positions are
//! known. The Irregular-Grid construction additionally relies on pins
//! lying on cutting lines, which holds by construction because routing
//! ranges are pin bounding boxes.
//!
//! Concretely, for every net we compute the net's center of gravity (mean
//! of member-module centers) and place each member's pin at the grid
//! intersection nearest to the projection of that center onto the module
//! rectangle. This is deterministic, keeps pins on (or in) their modules,
//! and pulls pins toward the net — the behaviour the
//! intersection-to-intersection method is used for in [4].

use irgrid_geom::{Point, Rect, Um};
use serde::{Deserialize, Serialize};

/// Deterministic pin placer with a configurable grid pitch.
///
/// # Examples
///
/// ```
/// use irgrid_floorplan::PinPlacer;
/// use irgrid_geom::{Point, Rect, Um};
///
/// let placer = PinPlacer::new(Um(10));
/// let module = Rect::from_origin_size(Point::new(Um(0), Um(0)), Um(35), Um(35));
/// // Target far to the upper right: pin lands on the module's corner
/// // region, snapped to the 10 um grid.
/// let pin = placer.pin(&module, Point::new(Um(100), Um(100)));
/// assert_eq!(pin, Point::new(Um(30), Um(30)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PinPlacer {
    pitch: Um,
}

impl PinPlacer {
    /// Creates a placer snapping pins to intersections of a `pitch`-spaced
    /// grid.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    #[must_use]
    pub fn new(pitch: Um) -> PinPlacer {
        assert!(pitch > Um::ZERO, "grid pitch must be positive, got {pitch}");
        PinPlacer { pitch }
    }

    /// The grid pitch.
    #[must_use]
    pub fn pitch(&self) -> Um {
        self.pitch
    }

    /// Places the pin of `module` for a net whose center of gravity is
    /// `target`: project `target` onto the module, then snap to the
    /// nearest grid intersection that still lies on the module.
    #[must_use]
    pub fn pin(&self, module: &Rect, target: Point) -> Point {
        let projected = Point::new(
            clamp(target.x, module.ll().x, module.ur().x),
            clamp(target.y, module.ll().y, module.ur().y),
        );
        Point::new(
            snap_within(projected.x, self.pitch, module.ll().x, module.ur().x),
            snap_within(projected.y, self.pitch, module.ll().y, module.ur().y),
        )
    }

    /// Places all pins of one net given its member modules' rectangles.
    ///
    /// Returns one pin per member, in member order. Empty input gives an
    /// empty result.
    #[must_use]
    pub fn place_net(&self, members: &[Rect]) -> Vec<Point> {
        if members.is_empty() {
            return Vec::new();
        }
        // Net center of gravity over member-module centers.
        let n = members.len() as i64;
        let sum = members
            .iter()
            .map(Rect::center)
            .fold(Point::ORIGIN, |acc, p| acc + p);
        let cog = Point::new(sum.x / n, sum.y / n);
        members.iter().map(|r| self.pin(r, cog)).collect()
    }
}

fn clamp(v: Um, lo: Um, hi: Um) -> Um {
    v.max(lo).min(hi)
}

/// Rounds `v` to the nearest multiple of `pitch` that stays within
/// `[lo, hi]`; if no multiple lies in the range (module narrower than one
/// pitch), returns the unsnapped clamped value.
fn snap_within(v: Um, pitch: Um, lo: Um, hi: Um) -> Um {
    let half = Um(pitch.0 / 2);
    let snapped = Um(((v + half).0.div_euclid(pitch.0)) * pitch.0);
    if snapped >= lo && snapped <= hi {
        return snapped;
    }
    // Try the nearest multiples on either side.
    let below = Um(v.0.div_euclid(pitch.0) * pitch.0);
    let above = below + pitch;
    if below >= lo && below <= hi {
        below
    } else if above >= lo && above <= hi {
        above
    } else {
        clamp(v, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Point::new(Um(x0), Um(y0)), Point::new(Um(x1), Um(y1)))
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn zero_pitch_rejected() {
        let _ = PinPlacer::new(Um(0));
    }

    #[test]
    fn pin_stays_on_module() {
        let placer = PinPlacer::new(Um(30));
        let module = rect(100, 100, 250, 180);
        for target in [
            Point::new(Um(0), Um(0)),
            Point::new(Um(1000), Um(1000)),
            Point::new(Um(150), Um(150)),
            Point::new(Um(99), Um(181)),
        ] {
            let pin = placer.pin(&module, target);
            assert!(
                module.contains(pin),
                "pin {pin} off module for target {target}"
            );
        }
    }

    #[test]
    fn pin_snaps_to_pitch_when_possible() {
        let placer = PinPlacer::new(Um(30));
        let module = rect(100, 100, 250, 180);
        let pin = placer.pin(&module, Point::new(Um(171), Um(140)));
        assert_eq!(pin.x.0 % 30, 0);
        assert_eq!(pin.y.0 % 30, 0);
        assert_eq!(pin, Point::new(Um(180), Um(150)));
    }

    #[test]
    fn narrow_module_keeps_clamped_position() {
        let placer = PinPlacer::new(Um(100));
        // Module narrower than the pitch and not straddling a multiple.
        let module = rect(110, 110, 150, 150);
        let pin = placer.pin(&module, Point::new(Um(500), Um(0)));
        assert_eq!(pin, Point::new(Um(150), Um(110)));
    }

    #[test]
    fn place_net_uses_center_of_gravity() {
        let placer = PinPlacer::new(Um(10));
        // Two modules left and right; pins face each other.
        let a = rect(0, 0, 40, 40);
        let b = rect(200, 0, 240, 40);
        let pins = placer.place_net(&[a, b]);
        assert_eq!(pins.len(), 2);
        // COG is at x=120: a's pin on its right edge, b's on its left edge.
        assert_eq!(pins[0].x, Um(40));
        assert_eq!(pins[1].x, Um(200));
    }

    #[test]
    fn place_net_empty_input() {
        assert!(PinPlacer::new(Um(10)).place_net(&[]).is_empty());
    }

    #[test]
    fn pins_identical_for_identical_inputs() {
        let placer = PinPlacer::new(Um(25));
        let members = [rect(0, 0, 50, 50), rect(100, 100, 160, 130)];
        assert_eq!(placer.place_net(&members), placer.place_net(&members));
    }

    #[test]
    fn snap_within_prefers_nearest() {
        assert_eq!(snap_within(Um(14), Um(10), Um(0), Um(100)), Um(10));
        assert_eq!(snap_within(Um(15), Um(10), Um(0), Um(100)), Um(20));
        // Out-of-range nearest multiple falls back to a neighbour.
        assert_eq!(snap_within(Um(14), Um(10), Um(12), Um(100)), Um(20));
        // No multiple in range at all.
        assert_eq!(snap_within(Um(14), Um(100), Um(12), Um(18)), Um(14));
    }
}
