//! The result of packing a slicing floorplan.

use irgrid_geom::{Rect, UmArea};
use irgrid_netlist::ModuleId;
use serde::{Deserialize, Serialize};

/// A packed floorplan: one rectangle per module plus the chip bounding box.
///
/// Produced by [`pack`](crate::pack); all rectangles are pairwise
/// non-overlapping (positive-area overlaps) and contained in the chip —
/// guaranteed by the slicing construction and re-checked by
/// [`Placement::check_consistency`] in tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    rects: Vec<Rect>,
    rotated: Vec<bool>,
    chip: Rect,
}

impl Placement {
    pub(crate) fn from_parts(rects: Vec<Rect>, rotated: Vec<bool>, chip: Rect) -> Placement {
        debug_assert_eq!(rects.len(), rotated.len());
        Placement {
            rects,
            rotated,
            chip,
        }
    }

    /// The placed rectangle of a module.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the packed circuit.
    #[must_use]
    pub fn module_rect(&self, id: ModuleId) -> Rect {
        self.rects[id.index()]
    }

    /// Whether a module was rotated 90° from its netlist orientation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn is_rotated(&self, id: ModuleId) -> bool {
        self.rotated[id.index()]
    }

    /// All module rectangles, indexable by [`ModuleId::index`].
    #[must_use]
    pub fn module_rects(&self) -> &[Rect] {
        &self.rects
    }

    /// The chip bounding box (lower-left at the origin).
    #[must_use]
    pub fn chip(&self) -> Rect {
        self.chip
    }

    /// Chip area — the floorplanner's area objective.
    #[must_use]
    pub fn area(&self) -> UmArea {
        self.chip.area()
    }

    /// Dead space: chip area minus total module area.
    #[must_use]
    pub fn dead_space(&self) -> UmArea {
        self.area() - self.rects.iter().map(Rect::area).sum::<UmArea>()
    }

    /// The modules whose placed rectangle or rotation differs from
    /// `other`, as sorted module indices. The incremental evaluator's
    /// move-diff primitive: after a perturbation is re-packed, only the
    /// nets touching these modules need re-decomposing.
    ///
    /// Placements of different module counts are incomparable; every
    /// module index of `self` is reported changed in that case.
    #[must_use]
    pub fn changed_modules(&self, other: &Placement) -> Vec<usize> {
        if self.rects.len() != other.rects.len() {
            return (0..self.rects.len()).collect();
        }
        (0..self.rects.len())
            .filter(|&i| self.rects[i] != other.rects[i] || self.rotated[i] != other.rotated[i])
            .collect()
    }

    /// Verifies structural soundness: every module inside the chip and no
    /// two modules overlapping with positive area. Returns a description
    /// of the first violation, if any. Intended for tests and debugging
    /// (`O(n²)`).
    #[must_use]
    pub fn check_consistency(&self) -> Option<String> {
        for (i, r) in self.rects.iter().enumerate() {
            if !self.chip.contains_rect(r) {
                return Some(format!("module {i} at {r} escapes chip {}", self.chip));
            }
        }
        for i in 0..self.rects.len() {
            for j in (i + 1)..self.rects.len() {
                if self.rects[i].overlaps_area(&self.rects[j]) {
                    return Some(format!(
                        "modules {i} and {j} overlap: {} vs {}",
                        self.rects[i], self.rects[j]
                    ));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irgrid_geom::{Point, Um};

    fn rect(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Point::new(Um(x0), Um(y0)), Point::new(Um(x1), Um(y1)))
    }

    #[test]
    fn accessors() {
        let p = Placement::from_parts(
            vec![rect(0, 0, 5, 5), rect(5, 0, 10, 4)],
            vec![false, true],
            rect(0, 0, 10, 5),
        );
        assert_eq!(p.module_rect(ModuleId(1)), rect(5, 0, 10, 4));
        assert!(p.is_rotated(ModuleId(1)));
        assert!(!p.is_rotated(ModuleId(0)));
        assert_eq!(p.area(), UmArea(50));
        assert_eq!(p.dead_space(), UmArea(50 - 25 - 20));
        assert!(p.check_consistency().is_none());
    }

    #[test]
    fn changed_modules_diffs_rects_and_rotation() {
        let a = Placement::from_parts(
            vec![rect(0, 0, 5, 5), rect(5, 0, 10, 4), rect(0, 5, 3, 8)],
            vec![false, true, false],
            rect(0, 0, 10, 8),
        );
        assert!(a.changed_modules(&a).is_empty());

        let moved = Placement::from_parts(
            vec![rect(0, 0, 5, 5), rect(5, 1, 10, 5), rect(0, 5, 3, 8)],
            vec![false, true, false],
            rect(0, 0, 10, 8),
        );
        assert_eq!(a.changed_modules(&moved), vec![1]);

        let respun = Placement::from_parts(
            vec![rect(0, 0, 5, 5), rect(5, 0, 10, 4), rect(0, 5, 3, 8)],
            vec![true, true, false],
            rect(0, 0, 10, 8),
        );
        assert_eq!(a.changed_modules(&respun), vec![0]);

        let shorter = Placement::from_parts(vec![rect(0, 0, 5, 5)], vec![false], rect(0, 0, 5, 5));
        assert_eq!(a.changed_modules(&shorter), vec![0, 1, 2]);
    }

    #[test]
    fn consistency_detects_overlap() {
        let p = Placement::from_parts(
            vec![rect(0, 0, 5, 5), rect(4, 0, 9, 5)],
            vec![false, false],
            rect(0, 0, 10, 5),
        );
        assert!(p.check_consistency().expect("overlap").contains("overlap"));
    }

    #[test]
    fn consistency_detects_escape() {
        let p = Placement::from_parts(vec![rect(0, 0, 11, 5)], vec![false], rect(0, 0, 10, 5));
        assert!(p.check_consistency().expect("escape").contains("escapes"));
    }
}
