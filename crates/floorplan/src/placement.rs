//! The result of packing a slicing floorplan.

use irgrid_geom::{Rect, UmArea};
use irgrid_netlist::ModuleId;
use serde::{Deserialize, Serialize};

/// A packed floorplan: one rectangle per module plus the chip bounding box.
///
/// Produced by [`pack`](crate::pack); all rectangles are pairwise
/// non-overlapping (positive-area overlaps) and contained in the chip —
/// guaranteed by the slicing construction and re-checked by
/// [`Placement::check_consistency`] in tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    rects: Vec<Rect>,
    rotated: Vec<bool>,
    chip: Rect,
}

impl Placement {
    pub(crate) fn from_parts(rects: Vec<Rect>, rotated: Vec<bool>, chip: Rect) -> Placement {
        debug_assert_eq!(rects.len(), rotated.len());
        Placement {
            rects,
            rotated,
            chip,
        }
    }

    /// The placed rectangle of a module.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the packed circuit.
    #[must_use]
    pub fn module_rect(&self, id: ModuleId) -> Rect {
        self.rects[id.index()]
    }

    /// Whether a module was rotated 90° from its netlist orientation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn is_rotated(&self, id: ModuleId) -> bool {
        self.rotated[id.index()]
    }

    /// All module rectangles, indexable by [`ModuleId::index`].
    #[must_use]
    pub fn module_rects(&self) -> &[Rect] {
        &self.rects
    }

    /// The chip bounding box (lower-left at the origin).
    #[must_use]
    pub fn chip(&self) -> Rect {
        self.chip
    }

    /// Chip area — the floorplanner's area objective.
    #[must_use]
    pub fn area(&self) -> UmArea {
        self.chip.area()
    }

    /// Dead space: chip area minus total module area.
    #[must_use]
    pub fn dead_space(&self) -> UmArea {
        self.area() - self.rects.iter().map(Rect::area).sum::<UmArea>()
    }

    /// Verifies structural soundness: every module inside the chip and no
    /// two modules overlapping with positive area. Returns a description
    /// of the first violation, if any. Intended for tests and debugging
    /// (`O(n²)`).
    #[must_use]
    pub fn check_consistency(&self) -> Option<String> {
        for (i, r) in self.rects.iter().enumerate() {
            if !self.chip.contains_rect(r) {
                return Some(format!("module {i} at {r} escapes chip {}", self.chip));
            }
        }
        for i in 0..self.rects.len() {
            for j in (i + 1)..self.rects.len() {
                if self.rects[i].overlaps_area(&self.rects[j]) {
                    return Some(format!(
                        "modules {i} and {j} overlap: {} vs {}",
                        self.rects[i], self.rects[j]
                    ));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irgrid_geom::{Point, Um};

    fn rect(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Point::new(Um(x0), Um(y0)), Point::new(Um(x1), Um(y1)))
    }

    #[test]
    fn accessors() {
        let p = Placement::from_parts(
            vec![rect(0, 0, 5, 5), rect(5, 0, 10, 4)],
            vec![false, true],
            rect(0, 0, 10, 5),
        );
        assert_eq!(p.module_rect(ModuleId(1)), rect(5, 0, 10, 4));
        assert!(p.is_rotated(ModuleId(1)));
        assert!(!p.is_rotated(ModuleId(0)));
        assert_eq!(p.area(), UmArea(50));
        assert_eq!(p.dead_space(), UmArea(50 - 25 - 20));
        assert!(p.check_consistency().is_none());
    }

    #[test]
    fn consistency_detects_overlap() {
        let p = Placement::from_parts(
            vec![rect(0, 0, 5, 5), rect(4, 0, 9, 5)],
            vec![false, false],
            rect(0, 0, 10, 5),
        );
        assert!(p.check_consistency().expect("overlap").contains("overlap"));
    }

    #[test]
    fn consistency_detects_escape() {
        let p = Placement::from_parts(vec![rect(0, 0, 11, 5)], vec![false], rect(0, 0, 10, 5));
        assert!(p.check_consistency().expect("escape").contains("escapes"));
    }
}
