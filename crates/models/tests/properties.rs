//! Property-based tests for the structural predictors.
//!
//! Every predictor must be a pure function of the geometry: repeated
//! evaluation is bit-identical, and rigidly translating the whole
//! netlist by a pitch multiple relocates the demand map without
//! changing its values or the scalar cost.

use irgrid_core::SpatialCongestion;
use irgrid_geom::{Point, Rect, Um};
use irgrid_models::{
    NetDemandModel, PinDensityModel, RentDemandModel, SpanDemandModel, WeightedNetDemandModel,
};
use proptest::prelude::*;

const PITCH: i64 = 30;

fn models() -> Vec<Box<dyn SpatialCongestion>> {
    vec![
        Box::new(PinDensityModel::new(Um(PITCH))),
        Box::new(NetDemandModel::new(Um(PITCH))),
        Box::new(WeightedNetDemandModel::new(Um(PITCH))),
        Box::new(RentDemandModel::new(Um(PITCH))),
        Box::new(SpanDemandModel::new(Um(PITCH))),
    ]
}

fn chip() -> Rect {
    Rect::from_origin_size(Point::ORIGIN, Um(600), Um(600))
}

/// Segments confined to the lower-left 300 µm quarter, leaving room to
/// translate by up to ten pitches in each axis.
fn arb_segments() -> impl Strategy<Value = Vec<(Point, Point)>> {
    prop::collection::vec(
        ((0i64..300, 0i64..300), (0i64..300, 0i64..300)).prop_map(|((ax, ay), (bx, by))| {
            (Point::new(Um(ax), Um(ay)), Point::new(Um(bx), Um(by)))
        }),
        1..12,
    )
}

fn translate(segments: &[(Point, Point)], dx: i64, dy: i64) -> Vec<(Point, Point)> {
    segments
        .iter()
        .map(|&(a, b)| {
            (
                Point::new(a.x + Um(dx), a.y + Um(dy)),
                Point::new(b.x + Um(dx), b.y + Um(dy)),
            )
        })
        .collect()
}

fn sorted(mut values: Vec<f64>) -> Vec<f64> {
    values.sort_by(f64::total_cmp);
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn predictors_are_deterministic(segments in arb_segments()) {
        for model in models() {
            let first = model.evaluate(&chip(), &segments);
            let second = model.evaluate(&chip(), &segments);
            prop_assert_eq!(
                first.to_bits(),
                second.to_bits(),
                "{} not deterministic",
                model.name()
            );
            let ra = model.raster(&chip(), &segments);
            let rb = model.raster(&chip(), &segments);
            prop_assert_eq!(ra.values(), rb.values());
        }
    }

    #[test]
    fn predictors_are_translation_invariant(
        segments in arb_segments(),
        dx in 0i64..=10,
        dy in 0i64..=10,
    ) {
        let shifted = translate(&segments, dx * PITCH, dy * PITCH);
        for model in models() {
            let base = model.evaluate(&chip(), &segments);
            let moved = model.evaluate(&chip(), &shifted);
            prop_assert_eq!(
                base.to_bits(),
                moved.to_bits(),
                "{} cost changed under translation",
                model.name()
            );
            let base_cells = sorted(model.raster(&chip(), &segments).values().to_vec());
            let moved_cells = sorted(model.raster(&chip(), &shifted).values().to_vec());
            prop_assert_eq!(
                base_cells,
                moved_cells,
                "{} demand map changed under translation",
                model.name()
            );
        }
    }

    #[test]
    fn rasters_agree_with_scalar_cost(segments in arb_segments()) {
        // The scalar cost is the top-10 % mean of the raster the model
        // reports — the two views must not drift apart.
        for model in models() {
            let cost = model.evaluate(&chip(), &segments);
            let raster = model.raster(&chip(), &segments);
            let rederived =
                irgrid_core::score::top_fraction_mean(raster.values(), 0.1);
            prop_assert_eq!(
                cost.to_bits(),
                rederived.to_bits(),
                "{} scalar cost disagrees with its raster",
                model.name()
            );
        }
    }
}
