//! Rent's-rule wiring demand.

use irgrid_core::analysis::Raster;
use irgrid_core::{CongestionModel, RetainedCongestion, SpatialCongestion, StatelessSession};
use irgrid_geom::{Point, Rect, Um};

use crate::demand::DemandGrid;

/// Maps per-cell pin counts through a Rent's-rule power law.
///
/// Rent's rule says a region with `B` components exposes `T = t·Bᵖ`
/// terminals; inverted, a grid cell that *contains* `P` pins generates
/// external wiring demand growing like `Pᵖ` — sublinear, because a
/// dense cluster keeps a growing share of its connectivity internal.
/// Compared with raw [`crate::PinDensityModel`] this damps the very
/// hottest pin clusters and so predicts *routable* density rather than
/// raw pin crowding. The default exponent 0.6 is the classic value for
/// random logic; tune with [`with_exponent`](RentDemandModel::with_exponent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RentDemandModel {
    pitch: Um,
    exponent: f64,
    top_fraction_permille: u32,
}

impl RentDemandModel {
    /// Creates the model with the given grid pitch, the classic Rent
    /// exponent 0.6, and the paper's top-10 % scoring fraction.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    #[must_use]
    pub fn new(pitch: Um) -> RentDemandModel {
        assert!(pitch > Um::ZERO, "grid pitch must be positive, got {pitch}");
        RentDemandModel {
            pitch,
            exponent: 0.6,
            top_fraction_permille: 100,
        }
    }

    /// Overrides the Rent exponent.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is not in `(0, 1]`.
    #[must_use]
    pub fn with_exponent(mut self, exponent: f64) -> RentDemandModel {
        assert!(
            exponent > 0.0 && exponent <= 1.0,
            "Rent exponent must be in (0, 1], got {exponent}"
        );
        self.exponent = exponent;
        self
    }

    /// Overrides the scoring fraction (default 10 %).
    ///
    /// # Panics
    ///
    /// Panics if `permille` is 0 or greater than 1000.
    #[must_use]
    pub fn with_top_fraction_permille(mut self, permille: u32) -> RentDemandModel {
        crate::check_permille(permille);
        self.top_fraction_permille = permille;
        self
    }

    /// The grid pitch.
    #[must_use]
    pub fn pitch(&self) -> Um {
        self.pitch
    }

    /// The Rent exponent in use.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    fn build(&self, chip: &Rect, segments: &[(Point, Point)]) -> DemandGrid {
        let mut map = DemandGrid::new(chip, self.pitch);
        for &(a, b) in segments {
            map.add_point(a, 1.0);
            map.add_point(b, 1.0);
        }
        let p = self.exponent;
        map.map_values(|pins| if pins > 0.0 { pins.powf(p) } else { 0.0 });
        map
    }
}

impl CongestionModel for RentDemandModel {
    fn evaluate(&self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        self.build(chip, segments)
            .cost(f64::from(self.top_fraction_permille) / 1000.0)
    }

    fn name(&self) -> String {
        format!("rent-demand {} p={}", self.pitch, self.exponent)
    }
}

impl SpatialCongestion for RentDemandModel {
    fn raster(&self, chip: &Rect, segments: &[(Point, Point)]) -> Raster {
        self.build(chip, segments).into_raster()
    }
}

impl RetainedCongestion for RentDemandModel {
    type Session = StatelessSession<RentDemandModel>;

    fn session(&self) -> Self::Session {
        StatelessSession::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PinDensityModel;

    fn chip() -> Rect {
        Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300))
    }

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Um(x), Um(y))
    }

    #[test]
    fn sublinear_in_pin_count() {
        let model = RentDemandModel::new(Um(30));
        let one = model.raster(&chip(), &[(pt(15, 15), pt(255, 255))]);
        let four: Vec<(Point, Point)> = (0..4).map(|_| (pt(15, 15), pt(255, 255))).collect();
        let stacked = model.raster(&chip(), &four);
        // 4 pins in the corner cell -> 4^0.6 < 4 x one pin's demand.
        assert!(stacked.values()[0] < 4.0 * one.values()[0]);
        assert!((stacked.values()[0] - 4.0f64.powf(0.6)).abs() < 1e-12);
    }

    #[test]
    fn damps_hotspots_relative_to_pin_density() {
        let hot: Vec<(Point, Point)> = (0..9).map(|_| (pt(15, 15), pt(16, 16))).collect();
        let cool = vec![(pt(15, 15), pt(255, 255)); 1];
        let rent = RentDemandModel::new(Um(30));
        let pins = PinDensityModel::new(Um(30));
        let rent_ratio = rent.evaluate(&chip(), &hot) / rent.evaluate(&chip(), &cool);
        let pin_ratio = pins.evaluate(&chip(), &hot) / pins.evaluate(&chip(), &cool);
        assert!(rent_ratio < pin_ratio, "{rent_ratio} vs {pin_ratio}");
    }

    #[test]
    fn exponent_one_is_pin_density() {
        let segments = vec![(pt(15, 15), pt(255, 195)), (pt(45, 255), pt(285, 15))];
        let rent = RentDemandModel::new(Um(30)).with_exponent(1.0);
        let pins = PinDensityModel::new(Um(30));
        let (a, b) = (
            rent.evaluate(&chip(), &segments),
            pins.evaluate(&chip(), &segments),
        );
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "Rent exponent")]
    fn wild_exponent_rejected() {
        let _ = RentDemandModel::new(Um(30)).with_exponent(1.5);
    }

    #[test]
    fn name_mentions_pitch_and_exponent() {
        assert_eq!(
            RentDemandModel::new(Um(30)).name(),
            "rent-demand 30um p=0.6"
        );
    }
}
