//! Pin density: the oldest congestion proxy there is.

use irgrid_core::analysis::Raster;
use irgrid_core::{CongestionModel, RetainedCongestion, SpatialCongestion, StatelessSession};
use irgrid_geom::{Point, Rect, Um};

use crate::demand::DemandGrid;

/// Counts segment endpoints (pins after MST decomposition) per grid
/// cell. Cells crowded with pins need local wiring regardless of where
/// the routes go — zero routing knowledge, near-zero cost, and the
/// weakest baseline every better model must beat.
///
/// # Examples
///
/// ```
/// use irgrid_core::CongestionModel;
/// use irgrid_geom::{Point, Rect, Um};
/// use irgrid_models::PinDensityModel;
///
/// let chip = Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300));
/// let hot = vec![(Point::new(Um(15), Um(15)), Point::new(Um(16), Um(16))); 8];
/// let model = PinDensityModel::new(Um(30));
/// assert!(model.evaluate(&chip, &hot) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinDensityModel {
    pitch: Um,
    top_fraction_permille: u32,
}

impl PinDensityModel {
    /// Creates the model with the given grid pitch and the paper's
    /// top-10 % scoring fraction.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    #[must_use]
    pub fn new(pitch: Um) -> PinDensityModel {
        assert!(pitch > Um::ZERO, "grid pitch must be positive, got {pitch}");
        PinDensityModel {
            pitch,
            top_fraction_permille: 100,
        }
    }

    /// Overrides the scoring fraction (default 10 %).
    ///
    /// # Panics
    ///
    /// Panics if `permille` is 0 or greater than 1000.
    #[must_use]
    pub fn with_top_fraction_permille(mut self, permille: u32) -> PinDensityModel {
        crate::check_permille(permille);
        self.top_fraction_permille = permille;
        self
    }

    /// The grid pitch.
    #[must_use]
    pub fn pitch(&self) -> Um {
        self.pitch
    }

    fn build(&self, chip: &Rect, segments: &[(Point, Point)]) -> DemandGrid {
        let mut map = DemandGrid::new(chip, self.pitch);
        for &(a, b) in segments {
            map.add_point(a, 1.0);
            map.add_point(b, 1.0);
        }
        map
    }
}

impl CongestionModel for PinDensityModel {
    fn evaluate(&self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        self.build(chip, segments)
            .cost(f64::from(self.top_fraction_permille) / 1000.0)
    }

    fn name(&self) -> String {
        format!("pin-density {}", self.pitch)
    }
}

impl SpatialCongestion for PinDensityModel {
    fn raster(&self, chip: &Rect, segments: &[(Point, Point)]) -> Raster {
        self.build(chip, segments).into_raster()
    }
}

impl RetainedCongestion for PinDensityModel {
    type Session = StatelessSession<PinDensityModel>;

    fn session(&self) -> Self::Session {
        StatelessSession::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> Rect {
        Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300))
    }

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Um(x), Um(y))
    }

    #[test]
    fn counts_both_endpoints() {
        let model = PinDensityModel::new(Um(30));
        let raster = model.raster(&chip(), &[(pt(15, 15), pt(255, 255))]);
        let total: f64 = raster.values().iter().sum();
        assert_eq!(total, 2.0);
        assert_eq!(raster.values()[0], 1.0);
    }

    #[test]
    fn concentration_raises_the_score() {
        let model = PinDensityModel::new(Um(30));
        let hot: Vec<(Point, Point)> = (0..6).map(|_| (pt(15, 15), pt(16, 16))).collect();
        let spread: Vec<(Point, Point)> = (0..6)
            .map(|i| (pt(15 + 40 * i, 15), pt(15 + 40 * i, 255)))
            .collect();
        assert!(model.evaluate(&chip(), &hot) > model.evaluate(&chip(), &spread));
    }

    #[test]
    fn empty_floorplan_scores_zero() {
        assert_eq!(PinDensityModel::new(Um(30)).evaluate(&chip(), &[]), 0.0);
    }

    #[test]
    fn name_mentions_pitch() {
        assert_eq!(PinDensityModel::new(Um(30)).name(), "pin-density 30um");
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn zero_pitch_rejected() {
        let _ = PinDensityModel::new(Um(0));
    }
}
