//! Bounding-box wiring demand, uniform and wirelength-weighted.

use irgrid_core::analysis::Raster;
use irgrid_core::{CongestionModel, RetainedCongestion, SpatialCongestion, StatelessSession};
use irgrid_geom::{Point, Rect, Um};

use crate::demand::DemandGrid;

/// Standard net demand: every net deposits one unit of demand, spread
/// uniformly over the `g1 × g2` cells of its bounding box. Cells
/// covered by many nets score high; net size is ignored beyond the
/// spreading itself.
///
/// # Examples
///
/// ```
/// use irgrid_core::CongestionModel;
/// use irgrid_geom::{Point, Rect, Um};
/// use irgrid_models::NetDemandModel;
///
/// let chip = Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300));
/// let segments = vec![(Point::new(Um(15), Um(15)), Point::new(Um(255), Um(255)))];
/// assert!(NetDemandModel::new(Um(30)).evaluate(&chip, &segments) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetDemandModel {
    pitch: Um,
    top_fraction_permille: u32,
}

impl NetDemandModel {
    /// Creates the model with the given grid pitch and the paper's
    /// top-10 % scoring fraction.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    #[must_use]
    pub fn new(pitch: Um) -> NetDemandModel {
        assert!(pitch > Um::ZERO, "grid pitch must be positive, got {pitch}");
        NetDemandModel {
            pitch,
            top_fraction_permille: 100,
        }
    }

    /// Overrides the scoring fraction (default 10 %).
    ///
    /// # Panics
    ///
    /// Panics if `permille` is 0 or greater than 1000.
    #[must_use]
    pub fn with_top_fraction_permille(mut self, permille: u32) -> NetDemandModel {
        crate::check_permille(permille);
        self.top_fraction_permille = permille;
        self
    }

    /// The grid pitch.
    #[must_use]
    pub fn pitch(&self) -> Um {
        self.pitch
    }

    fn build(&self, chip: &Rect, segments: &[(Point, Point)]) -> DemandGrid {
        let mut map = DemandGrid::new(chip, self.pitch);
        for &(a, b) in segments {
            let range = map.range_of(a, b);
            let cells = (range.g1() * range.g2()) as f64;
            map.add_range(&range, 1.0 / cells);
        }
        map
    }
}

impl CongestionModel for NetDemandModel {
    fn evaluate(&self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        self.build(chip, segments)
            .cost(f64::from(self.top_fraction_permille) / 1000.0)
    }

    fn name(&self) -> String {
        format!("net-demand {}", self.pitch)
    }
}

impl SpatialCongestion for NetDemandModel {
    fn raster(&self, chip: &Rect, segments: &[(Point, Point)]) -> Raster {
        self.build(chip, segments).into_raster()
    }
}

impl RetainedCongestion for NetDemandModel {
    type Session = StatelessSession<NetDemandModel>;

    fn session(&self) -> Self::Session {
        StatelessSession::new(*self)
    }
}

/// Wirelength-weighted net demand — the RUDY estimator (Spindler &
/// Johannes, DATE 2007): each net deposits its expected L-route
/// wirelength, `g1 + g2 - 1` cells, spread uniformly over its bounding
/// box. Large spanning nets therefore press harder than local ones,
/// which plain [`NetDemandModel`] treats alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedNetDemandModel {
    pitch: Um,
    top_fraction_permille: u32,
}

impl WeightedNetDemandModel {
    /// Creates the model with the given grid pitch and the paper's
    /// top-10 % scoring fraction.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    #[must_use]
    pub fn new(pitch: Um) -> WeightedNetDemandModel {
        assert!(pitch > Um::ZERO, "grid pitch must be positive, got {pitch}");
        WeightedNetDemandModel {
            pitch,
            top_fraction_permille: 100,
        }
    }

    /// Overrides the scoring fraction (default 10 %).
    ///
    /// # Panics
    ///
    /// Panics if `permille` is 0 or greater than 1000.
    #[must_use]
    pub fn with_top_fraction_permille(mut self, permille: u32) -> WeightedNetDemandModel {
        crate::check_permille(permille);
        self.top_fraction_permille = permille;
        self
    }

    /// The grid pitch.
    #[must_use]
    pub fn pitch(&self) -> Um {
        self.pitch
    }

    fn build(&self, chip: &Rect, segments: &[(Point, Point)]) -> DemandGrid {
        let mut map = DemandGrid::new(chip, self.pitch);
        for &(a, b) in segments {
            let range = map.range_of(a, b);
            let cells = (range.g1() * range.g2()) as f64;
            let wirelength = (range.g1() + range.g2() - 1) as f64;
            map.add_range(&range, wirelength / cells);
        }
        map
    }
}

impl CongestionModel for WeightedNetDemandModel {
    fn evaluate(&self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        self.build(chip, segments)
            .cost(f64::from(self.top_fraction_permille) / 1000.0)
    }

    fn name(&self) -> String {
        format!("weighted-net-demand {}", self.pitch)
    }
}

impl SpatialCongestion for WeightedNetDemandModel {
    fn raster(&self, chip: &Rect, segments: &[(Point, Point)]) -> Raster {
        self.build(chip, segments).into_raster()
    }
}

impl RetainedCongestion for WeightedNetDemandModel {
    type Session = StatelessSession<WeightedNetDemandModel>;

    fn session(&self) -> Self::Session {
        StatelessSession::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> Rect {
        Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300))
    }

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Um(x), Um(y))
    }

    #[test]
    fn standard_demand_mass_is_net_count() {
        let model = NetDemandModel::new(Um(30));
        let segments = vec![(pt(15, 15), pt(255, 195)), (pt(45, 255), pt(285, 15))];
        let raster = model.raster(&chip(), &segments);
        let mass: f64 = raster.values().iter().sum();
        assert!((mass - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_demand_mass_is_total_wirelength() {
        let model = WeightedNetDemandModel::new(Um(30));
        // Cells (0,0) -> (8,6): L-route wirelength 8 + 6 + 1 = 15 cells.
        let segments = vec![(pt(15, 15), pt(255, 195))];
        let raster = model.raster(&chip(), &segments);
        let mass: f64 = raster.values().iter().sum();
        assert!((mass - 15.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_presses_harder_on_long_nets() {
        let long = vec![(pt(15, 15), pt(285, 285))];
        let short = vec![(pt(15, 15), pt(45, 45))];
        let model = WeightedNetDemandModel::new(Um(30));
        let plain = NetDemandModel::new(Um(30));
        let weighted_ratio = model.evaluate(&chip(), &long) / model.evaluate(&chip(), &short);
        let plain_ratio = plain.evaluate(&chip(), &long) / plain.evaluate(&chip(), &short);
        assert!(weighted_ratio > plain_ratio);
    }

    #[test]
    fn degenerate_segment_is_one_cell_of_demand() {
        let model = NetDemandModel::new(Um(30));
        let raster = model.raster(&chip(), &[(pt(15, 15), pt(16, 16))]);
        assert_eq!(raster.values()[0], 1.0);
    }

    #[test]
    fn names_mention_pitch() {
        assert_eq!(NetDemandModel::new(Um(30)).name(), "net-demand 30um");
        assert_eq!(
            WeightedNetDemandModel::new(Um(30)).name(),
            "weighted-net-demand 30um"
        );
    }
}
