//! Per-axis span (track) demand.

use irgrid_core::analysis::Raster;
use irgrid_core::{CongestionModel, RetainedCongestion, SpatialCongestion, StatelessSession};
use irgrid_geom::{Point, Rect, Um};

use crate::demand::DemandGrid;

/// Track-oriented demand: any route of a net needs one horizontal track
/// somewhere in the `g2` rows of its bounding box and one vertical
/// track somewhere in its `g1` columns, so every cell of the box
/// receives `1/g2 + 1/g1` units. Long *flat* nets (narrow boxes) raise
/// demand sharply — a net confined to one row puts a full track in
/// every cell of that row — which is exactly the corridor pressure the
/// uniform [`crate::NetDemandModel`] dilutes away.
///
/// # Examples
///
/// ```
/// use irgrid_core::CongestionModel;
/// use irgrid_geom::{Point, Rect, Um};
/// use irgrid_models::SpanDemandModel;
///
/// let chip = Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300));
/// let corridor = vec![(Point::new(Um(15), Um(45)), Point::new(Um(285), Um(45)))];
/// assert!(SpanDemandModel::new(Um(30)).evaluate(&chip, &corridor) > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanDemandModel {
    pitch: Um,
    top_fraction_permille: u32,
}

impl SpanDemandModel {
    /// Creates the model with the given grid pitch and the paper's
    /// top-10 % scoring fraction.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    #[must_use]
    pub fn new(pitch: Um) -> SpanDemandModel {
        assert!(pitch > Um::ZERO, "grid pitch must be positive, got {pitch}");
        SpanDemandModel {
            pitch,
            top_fraction_permille: 100,
        }
    }

    /// Overrides the scoring fraction (default 10 %).
    ///
    /// # Panics
    ///
    /// Panics if `permille` is 0 or greater than 1000.
    #[must_use]
    pub fn with_top_fraction_permille(mut self, permille: u32) -> SpanDemandModel {
        crate::check_permille(permille);
        self.top_fraction_permille = permille;
        self
    }

    /// The grid pitch.
    #[must_use]
    pub fn pitch(&self) -> Um {
        self.pitch
    }

    fn build(&self, chip: &Rect, segments: &[(Point, Point)]) -> DemandGrid {
        let mut map = DemandGrid::new(chip, self.pitch);
        for &(a, b) in segments {
            let range = map.range_of(a, b);
            let per_cell = 1.0 / range.g2() as f64 + 1.0 / range.g1() as f64;
            map.add_range(&range, per_cell);
        }
        map
    }
}

impl CongestionModel for SpanDemandModel {
    fn evaluate(&self, chip: &Rect, segments: &[(Point, Point)]) -> f64 {
        self.build(chip, segments)
            .cost(f64::from(self.top_fraction_permille) / 1000.0)
    }

    fn name(&self) -> String {
        format!("span-demand {}", self.pitch)
    }
}

impl SpatialCongestion for SpanDemandModel {
    fn raster(&self, chip: &Rect, segments: &[(Point, Point)]) -> Raster {
        self.build(chip, segments).into_raster()
    }
}

impl RetainedCongestion for SpanDemandModel {
    type Session = StatelessSession<SpanDemandModel>;

    fn session(&self) -> Self::Session {
        StatelessSession::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> Rect {
        Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300))
    }

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Um(x), Um(y))
    }

    #[test]
    fn corridor_net_demands_a_full_track() {
        let model = SpanDemandModel::new(Um(30));
        // One row (g2 = 1), nine columns: every covered cell carries the
        // full horizontal track plus 1/9 of a vertical one.
        let raster = model.raster(&chip(), &[(pt(15, 45), pt(255, 45))]);
        let expected = 1.0 + 1.0 / 9.0;
        assert!((raster.values()[10] - expected).abs() < 1e-12);
    }

    #[test]
    fn square_net_spreads_tracks() {
        let model = SpanDemandModel::new(Um(30));
        let raster = model.raster(&chip(), &[(pt(15, 15), pt(255, 255))]);
        // 9 x 9 box: each cell gets 2/9.
        assert!((raster.values()[0] - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn flat_nets_score_above_square_nets_of_equal_wirelength() {
        let model = SpanDemandModel::new(Um(30));
        let flat = vec![(pt(15, 45), pt(495, 45))];
        let square = vec![(pt(15, 15), pt(255, 255))];
        let big = Rect::from_origin_size(Point::ORIGIN, Um(600), Um(300));
        assert!(model.evaluate(&big, &flat) > model.evaluate(&big, &square));
    }

    #[test]
    fn name_mentions_pitch() {
        assert_eq!(SpanDemandModel::new(Um(30)).name(), "span-demand 30um");
    }
}
