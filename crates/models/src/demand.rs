//! The shared per-cell accumulation buffer behind every structural
//! predictor.

use irgrid_core::analysis::Raster;
use irgrid_core::score::top_fraction_mean;
use irgrid_core::{RoutingRange, UnitGrid};
use irgrid_geom::{Point, Rect, Um};

/// A unit grid plus one `f64` accumulator per cell.
///
/// Predictors build their map by walking the segment list once and
/// depositing demand into cells; the buffer is allocated exactly once
/// per evaluation, sized to the grid. Deposits are indexed writes (not
/// float reductions), so per-cell values are independent of segment
/// order up to float addition of the deposits actually landing in the
/// cell — which the predictors perform in the fixed input order.
#[derive(Debug, Clone)]
pub struct DemandGrid {
    grid: UnitGrid,
    values: Vec<f64>,
}

impl DemandGrid {
    /// An all-zero demand grid over `chip` at `pitch`.
    ///
    /// # Panics
    ///
    /// Panics if the pitch is not positive or the chip is degenerate /
    /// off-origin (see [`UnitGrid::new`]).
    #[must_use]
    pub fn new(chip: &Rect, pitch: Um) -> DemandGrid {
        let grid = UnitGrid::new(chip, pitch);
        DemandGrid {
            values: vec![0.0f64; grid.cell_count()],
            grid,
        }
    }

    /// The underlying grid.
    #[must_use]
    pub fn grid(&self) -> &UnitGrid {
        &self.grid
    }

    /// The routing range (grid bounding box) of a segment — the region
    /// structural demand is spread over.
    #[must_use]
    pub fn range_of(&self, a: Point, b: Point) -> RoutingRange {
        RoutingRange::from_segment(&self.grid, a, b)
    }

    /// Deposits `amount` into the cell containing `p` (clamped to the
    /// grid like every pin lookup).
    pub fn add_point(&mut self, p: Point, amount: f64) {
        let (x, y) = self.grid.cell_of(p);
        self.values[(y * self.grid.cols() + x) as usize] += amount;
    }

    /// Deposits `per_cell` into every cell of `range`.
    pub fn add_range(&mut self, range: &RoutingRange, per_cell: f64) {
        let cols = self.grid.cols();
        for y in 0..range.g2() {
            let row_base = (range.y0() + y) * cols + range.x0();
            for x in 0..range.g1() {
                self.values[(row_base + x) as usize] += per_cell;
            }
        }
    }

    /// Applies `f` to every cell value in place (e.g. the Rent power
    /// law over accumulated pin counts).
    pub fn map_values(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// Cell values, row-major.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The top-`fraction` mean score (the paper's scoring rule).
    #[must_use]
    pub fn cost(&self, fraction: f64) -> f64 {
        top_fraction_mean(&self.values, fraction)
    }

    /// Consumes the buffer into a [`Raster`] for spatial comparison.
    #[must_use]
    pub fn into_raster(self) -> Raster {
        Raster::new(
            self.grid.cols() as usize,
            self.grid.rows() as usize,
            self.values,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> Rect {
        Rect::from_origin_size(Point::ORIGIN, Um(90), Um(90))
    }

    #[test]
    fn point_deposits_land_in_their_cell() {
        let mut d = DemandGrid::new(&chip(), Um(30));
        d.add_point(Point::new(Um(45), Um(75)), 2.0);
        assert_eq!(d.values()[2 * 3 + 1], 2.0);
        assert_eq!(d.values().iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    fn range_deposits_cover_the_bbox() {
        let mut d = DemandGrid::new(&chip(), Um(30));
        let r = d.range_of(Point::new(Um(5), Um(5)), Point::new(Um(65), Um(35)));
        d.add_range(&r, 0.5);
        // 3 x 2 cells at 0.5 each.
        assert_eq!(d.values().iter().filter(|&&v| v == 0.5).count(), 6);
        assert!((d.values().iter().sum::<f64>() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn into_raster_preserves_layout() {
        let mut d = DemandGrid::new(&chip(), Um(30));
        d.add_point(Point::new(Um(0), Um(0)), 1.0);
        let raster = d.into_raster();
        assert_eq!((raster.cols(), raster.rows()), (3, 3));
        assert_eq!(raster.values()[0], 1.0);
    }
}
