//! Structural congestion predictors — the cheap end of the
//! accuracy-vs-speed frontier.
//!
//! The probabilistic models in [`irgrid_core`] count monotone routes;
//! the predictors here never look at routes at all. Each one maps a
//! *structural* property of the placed netlist — where the pins are, how
//! large the net bounding boxes are, how Rent's rule says demand scales
//! with pin count — onto the unit grid and scores the floorplan with the
//! same top-10 % rule the paper uses. They are the classic early-stage
//! estimators an industrial flow runs first, and the baselines the
//! paper's Table 2/3 claim ("a route-counting model predicts routed
//! congestion better") must beat to mean anything. The
//! `repro compare-all` harness races every one of them against routed
//! ground truth.
//!
//! All five implement [`CongestionModel`] (scalar score, usable as a
//! floorplanner cost term) and [`SpatialCongestion`] (per-cell raster,
//! usable for map-level validation):
//!
//! * [`PinDensityModel`] — pins per grid cell;
//! * [`NetDemandModel`] — one unit of wiring demand per net, spread
//!   uniformly over its bounding box;
//! * [`WeightedNetDemandModel`] — like net demand, but each net carries
//!   its expected L-route wirelength (the RUDY estimator of Spindler &
//!   Johannes);
//! * [`RentDemandModel`] — per-cell pin counts mapped through a Rent's
//!   rule power law;
//! * [`SpanDemandModel`] — per-axis track demand: a net needs one
//!   horizontal track somewhere in its row span and one vertical track
//!   somewhere in its column span.
//!
//! Every predictor is deterministic (pure functions of `(chip,
//! segments)`, fixed iteration order, no wall clock, no hashing) and
//! allocation-disciplined: one map-sized buffer per evaluation, nothing
//! per segment.
//!
//! # Examples
//!
//! ```
//! use irgrid_core::{CongestionModel, SpatialCongestion};
//! use irgrid_geom::{Point, Rect, Um};
//! use irgrid_models::{NetDemandModel, PinDensityModel};
//!
//! let chip = Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300));
//! let segments = vec![(Point::new(Um(15), Um(15)), Point::new(Um(255), Um(255)))];
//! let pins = PinDensityModel::new(Um(30));
//! assert!(pins.evaluate(&chip, &segments) > 0.0);
//! let demand = NetDemandModel::new(Um(30)).raster(&chip, &segments);
//! assert_eq!((demand.cols(), demand.rows()), (10, 10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod demand;
mod net_demand;
mod pin_density;
mod rent;
mod span;

pub use demand::DemandGrid;
pub use net_demand::{NetDemandModel, WeightedNetDemandModel};
pub use pin_density::PinDensityModel;
pub use rent::RentDemandModel;
pub use span::SpanDemandModel;

// Re-exported so downstream code can bound generics on the traits the
// predictors implement without a separate irgrid-core dependency.
pub use irgrid_core::{CongestionModel, SpatialCongestion};

/// Validates a permille scoring fraction (shared by every predictor's
/// `with_top_fraction_permille`).
///
/// # Panics
///
/// Panics if `permille` is 0 or greater than 1000.
fn check_permille(permille: u32) {
    assert!(
        permille > 0 && permille <= 1000,
        "permille must be in 1..=1000, got {permille}"
    );
}
