//! Circuit description for the `irgrid` workspace: modules, multi-pin nets,
//! benchmark circuits, and the minimum-spanning-tree decomposition of
//! multi-pin nets into the 2-pin nets the congestion model consumes.
//!
//! The DATE 2004 paper evaluates on five MCNC block-level benchmarks
//! (apte, xerox, hp, ami33, ami49). The original MCNC files are not
//! redistributable with this repository, so [`mcnc`] provides deterministic
//! *synthetic stand-ins* with the published module counts, net counts, and
//! total module areas — see `DESIGN.md` for the substitution rationale.
//!
//! # Examples
//!
//! ```
//! use irgrid_netlist::{mcnc::McncCircuit, Circuit};
//!
//! let ami33: Circuit = McncCircuit::Ami33.circuit();
//! assert_eq!(ami33.modules().len(), 33);
//! assert_eq!(ami33.nets().len(), 123);
//! // Total module area matches the published benchmark within 1%.
//! let mm2 = ami33.total_module_area().as_mm2();
//! assert!((mm2 - 1.156).abs() / 1.156 < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod error;
pub mod generator;
pub mod io;
pub mod mcnc;
mod module;
pub mod mst;
mod net;

pub use circuit::Circuit;
pub use error::BuildCircuitError;
pub use module::{Module, ModuleId};
pub use net::{Net, NetId};
