//! Minimum-spanning-tree decomposition of multi-pin nets.
//!
//! The paper (§5) decomposes every multi-pin net into 2-pin nets by a
//! minimum spanning tree over the pin positions before congestion
//! estimation and wirelength computation. Distances are Manhattan, matching
//! the routing model.
//!
//! # Examples
//!
//! ```
//! use irgrid_geom::{Point, Um};
//! use irgrid_netlist::mst::manhattan_mst;
//!
//! let pins = [
//!     Point::new(Um(0), Um(0)),
//!     Point::new(Um(10), Um(0)),
//!     Point::new(Um(10), Um(10)),
//! ];
//! let edges = manhattan_mst(&pins);
//! assert_eq!(edges.len(), 2);
//! let total: i64 = edges
//!     .iter()
//!     .map(|&(a, b)| pins[a].manhattan_distance(pins[b]).0)
//!     .sum();
//! assert_eq!(total, 20);
//! ```

use irgrid_geom::{Point, Um};

/// Computes a minimum spanning tree over `pins` under the Manhattan metric.
///
/// Returns the tree edges as index pairs into `pins` (each pair ordered
/// `(smaller, larger)`); for `n` pins the result has `n - 1` edges, or is
/// empty when `n < 2`. Uses Prim's algorithm in `O(n²)`, which is optimal
/// for the dense implicit graph of a net's pins (net degrees are small).
///
/// Coincident pins are handled: a zero-length edge connects them.
#[must_use]
pub fn manhattan_mst(pins: &[Point]) -> Vec<(usize, usize)> {
    let n = pins.len();
    if n < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    // best_dist[v] = distance from v to the tree; best_from[v] = tree vertex
    // realizing it.
    let mut best_dist = vec![Um::MAX; n];
    let mut best_from = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);

    in_tree[0] = true;
    for v in 1..n {
        best_dist[v] = pins[0].manhattan_distance(pins[v]);
    }

    for _ in 1..n {
        let mut next = usize::MAX;
        let mut next_dist = Um::MAX;
        for v in 0..n {
            if !in_tree[v] && best_dist[v] < next_dist {
                next = v;
                next_dist = best_dist[v];
            }
        }
        debug_assert_ne!(next, usize::MAX, "graph is complete, a vertex must remain");
        in_tree[next] = true;
        let from = best_from[next];
        edges.push((from.min(next), from.max(next)));
        for v in 0..n {
            if !in_tree[v] {
                let d = pins[next].manhattan_distance(pins[v]);
                if d < best_dist[v] {
                    best_dist[v] = d;
                    best_from[v] = next;
                }
            }
        }
    }
    edges
}

/// Decomposes a pin set into the 2-pin point segments of its Manhattan MST.
///
/// This is the form consumed by the congestion models: each segment's
/// bounding box is one routing range.
#[must_use]
pub fn decompose(pins: &[Point]) -> Vec<(Point, Point)> {
    manhattan_mst(pins)
        .into_iter()
        .map(|(a, b)| (pins[a], pins[b]))
        .collect()
}

/// Total Manhattan length of the MST over `pins`.
///
/// The paper's "wire length" objective is the sum of this quantity over all
/// nets.
#[must_use]
pub fn mst_length(pins: &[Point]) -> Um {
    manhattan_mst(pins)
        .into_iter()
        .map(|(a, b)| pins[a].manhattan_distance(pins[b]))
        .sum()
}

/// Decomposes a pin set into a *star*: the pin nearest the centroid is
/// the hub, every other pin connects to it directly.
///
/// The star is the other classic multi-pin decomposition (cheaper to
/// compute, longer wire); exposed so the ablation benches can quantify
/// how the decomposition choice feeds into congestion estimates. The
/// MST never exceeds the star in total length — the star is itself a
/// spanning tree.
#[must_use]
pub fn star_decompose(pins: &[Point]) -> Vec<(Point, Point)> {
    if pins.len() < 2 {
        return Vec::new();
    }
    let n = pins.len() as i64;
    let sum = pins.iter().fold(Point::ORIGIN, |acc, &p| acc + p);
    let centroid = Point::new(Um(sum.x.0 / n), Um(sum.y.0 / n));
    let hub = pins
        .iter()
        .enumerate()
        .min_by_key(|(i, p)| (p.manhattan_distance(centroid), *i))
        .map(|(i, _)| i)
        // irgrid-lint: allow(P1): the early return above handles pin lists shorter than two
        .expect("non-empty pin list");
    pins.iter()
        .enumerate()
        .filter(|&(i, _)| i != hub)
        .map(|(_, &p)| (pins[hub], p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Um(x), Um(y))
    }

    /// Kruskal with union-find: an independent MST implementation used as a
    /// cross-check oracle.
    fn kruskal_weight(pins: &[Point]) -> Um {
        let n = pins.len();
        if n < 2 {
            return Um::ZERO;
        }
        let mut edges: Vec<(Um, usize, usize)> = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((pins[a].manhattan_distance(pins[b]), a, b));
            }
        }
        edges.sort();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut v: usize) -> usize {
            while parent[v] != v {
                parent[v] = parent[parent[v]];
                v = parent[v];
            }
            v
        }
        let mut total = Um::ZERO;
        let mut used = 0;
        for (w, a, b) in edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
                total += w;
                used += 1;
                if used == n - 1 {
                    break;
                }
            }
        }
        total
    }

    #[test]
    fn empty_and_single_pin() {
        assert!(manhattan_mst(&[]).is_empty());
        assert!(manhattan_mst(&[pt(3, 3)]).is_empty());
        assert_eq!(mst_length(&[pt(3, 3)]), Um::ZERO);
    }

    #[test]
    fn two_pins_single_edge() {
        let pins = [pt(0, 0), pt(5, 7)];
        assert_eq!(manhattan_mst(&pins), vec![(0, 1)]);
        assert_eq!(mst_length(&pins), Um(12));
    }

    #[test]
    fn l_shape_prefers_short_edges() {
        // Star layouts: center connects to all leaves.
        let pins = [pt(0, 0), pt(100, 0), pt(0, 100), pt(-100, 0), pt(0, -100)];
        let edges = manhattan_mst(&pins);
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|&(a, b)| a == 0 || b == 0));
        assert_eq!(mst_length(&pins), Um(400));
    }

    #[test]
    fn coincident_pins_connect_with_zero_edge() {
        let pins = [pt(1, 1), pt(1, 1), pt(5, 5)];
        let edges = manhattan_mst(&pins);
        assert_eq!(edges.len(), 2);
        assert_eq!(mst_length(&pins), Um(8));
    }

    #[test]
    fn decompose_returns_point_pairs() {
        let pins = [pt(0, 0), pt(4, 0), pt(4, 3)];
        let segs = decompose(&pins);
        assert_eq!(segs.len(), 2);
        let total: i64 = segs.iter().map(|(a, b)| a.manhattan_distance(*b).0).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn matches_kruskal_on_grid_points() {
        // Deterministic pseudo-random layouts; Prim and Kruskal must agree
        // on total weight (the MST weight is unique even when the tree
        // is not).
        let mut state = 0x12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as i64
        };
        for n in 2..12 {
            let pins: Vec<Point> = (0..n).map(|_| pt(next(), next())).collect();
            assert_eq!(mst_length(&pins), kruskal_weight(&pins), "n = {n}");
        }
    }

    #[test]
    fn star_has_n_minus_one_edges_from_one_hub() {
        let pins = [pt(0, 0), pt(10, 0), pt(0, 10), pt(10, 10), pt(5, 5)];
        let star = star_decompose(&pins);
        assert_eq!(star.len(), 4);
        // The center pin is nearest the centroid -> it is the hub.
        assert!(star.iter().all(|&(hub, _)| hub == pt(5, 5)));
    }

    #[test]
    fn star_never_shorter_than_mst() {
        let mut state = 0xdeadu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 500) as i64
        };
        for n in 2..10 {
            let pins: Vec<Point> = (0..n).map(|_| pt(next(), next())).collect();
            let star_len: Um = star_decompose(&pins)
                .iter()
                .map(|(a, b)| a.manhattan_distance(*b))
                .sum();
            assert!(star_len >= mst_length(&pins), "n = {n}");
        }
    }

    #[test]
    fn star_trivial_inputs() {
        assert!(star_decompose(&[]).is_empty());
        assert!(star_decompose(&[pt(1, 1)]).is_empty());
        assert_eq!(star_decompose(&[pt(0, 0), pt(3, 4)]).len(), 1);
    }

    #[test]
    fn mst_is_spanning() {
        let pins: Vec<Point> = (0..9).map(|i| pt(i * 13 % 40, i * 29 % 40)).collect();
        let edges = manhattan_mst(&pins);
        assert_eq!(edges.len(), pins.len() - 1);
        // Union-find connectivity check.
        let mut parent: Vec<usize> = (0..pins.len()).collect();
        fn find(parent: &mut [usize], mut v: usize) -> usize {
            while parent[v] != v {
                parent[v] = parent[parent[v]];
                v = parent[v];
            }
            v
        }
        for (a, b) in edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        for v in 1..pins.len() {
            assert_eq!(find(&mut parent, v), root, "vertex {v} disconnected");
        }
    }
}
