//! Synthetic stand-ins for the five MCNC block-level benchmarks.
//!
//! The DATE 2004 paper evaluates on MCNC apte, xerox, hp, ami33 and ami49.
//! Those netlist files are from a proprietary-era distribution and are not
//! shipped here; instead each benchmark is regenerated deterministically
//! with the *published* statistics of the original:
//!
//! | circuit | modules | nets | total module area |
//! |---------|---------|------|-------------------|
//! | apte    | 9       | 97   | 46.56 mm²         |
//! | xerox   | 10      | 203  | 19.35 mm²         |
//! | hp      | 11      | 83   | 8.83 mm²          |
//! | ami33   | 33      | 123  | 1.16 mm²          |
//! | ami49   | 49      | 408  | 35.45 mm²         |
//!
//! The congestion experiments compare estimation *models* on a common
//! circuit, so any circuit family with matching size/area/fan-out
//! statistics exercises the same code paths and preserves the paper's
//! relative results (see DESIGN.md, "Substitutions").

use crate::generator::CircuitGenerator;
use crate::Circuit;

/// The five MCNC benchmark identities (synthetic stand-ins).
///
/// # Examples
///
/// ```
/// use irgrid_netlist::mcnc::McncCircuit;
///
/// for bench in McncCircuit::ALL {
///     let c = bench.circuit();
///     assert_eq!(c.modules().len(), bench.module_count());
///     assert_eq!(c.nets().len(), bench.net_count());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum McncCircuit {
    /// apte: 9 modules, 97 nets, ≈46.56 mm².
    Apte,
    /// xerox: 10 modules, 203 nets, ≈19.35 mm².
    Xerox,
    /// hp: 11 modules, 83 nets, ≈8.83 mm².
    Hp,
    /// ami33: 33 modules, 123 nets, ≈1.16 mm².
    Ami33,
    /// ami49: 49 modules, 408 nets, ≈35.45 mm².
    Ami49,
}

impl McncCircuit {
    /// All five benchmarks, in the paper's table order.
    pub const ALL: [McncCircuit; 5] = [
        McncCircuit::Apte,
        McncCircuit::Xerox,
        McncCircuit::Hp,
        McncCircuit::Ami33,
        McncCircuit::Ami49,
    ];

    /// The benchmark's lowercase name as the paper prints it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            McncCircuit::Apte => "apte",
            McncCircuit::Xerox => "xerox",
            McncCircuit::Hp => "hp",
            McncCircuit::Ami33 => "ami33",
            McncCircuit::Ami49 => "ami49",
        }
    }

    /// Parses a benchmark name (case-insensitive).
    #[must_use]
    pub fn from_name(name: &str) -> Option<McncCircuit> {
        McncCircuit::ALL
            .into_iter()
            .find(|c| c.name().eq_ignore_ascii_case(name))
    }

    /// Published module count of the original benchmark.
    #[must_use]
    pub fn module_count(self) -> usize {
        match self {
            McncCircuit::Apte => 9,
            McncCircuit::Xerox => 10,
            McncCircuit::Hp => 11,
            McncCircuit::Ami33 => 33,
            McncCircuit::Ami49 => 49,
        }
    }

    /// Published net count of the original benchmark.
    #[must_use]
    pub fn net_count(self) -> usize {
        match self {
            McncCircuit::Apte => 97,
            McncCircuit::Xerox => 203,
            McncCircuit::Hp => 83,
            McncCircuit::Ami33 => 123,
            McncCircuit::Ami49 => 408,
        }
    }

    /// Published total module area in µm².
    #[must_use]
    pub fn total_area_um2(self) -> f64 {
        match self {
            McncCircuit::Apte => 46.5616e6,
            McncCircuit::Xerox => 19.3503e6,
            McncCircuit::Hp => 8.8306e6,
            McncCircuit::Ami33 => 1.1564e6,
            McncCircuit::Ami49 => 35.4454e6,
        }
    }

    /// The grid pitch (µm) the paper uses for this circuit's Irregular-Grid
    /// runs in Table 2 (60 µm for apte, 30 µm for the rest).
    #[must_use]
    pub fn paper_grid_pitch_um(self) -> i64 {
        match self {
            McncCircuit::Apte => 60,
            _ => 30,
        }
    }

    /// Builds the deterministic synthetic circuit for this benchmark.
    ///
    /// The seed is fixed per benchmark, so every run of every experiment
    /// sees the identical circuit.
    #[must_use]
    pub fn circuit(self) -> Circuit {
        // Larger designs (ami33/ami49) are cell-like: tighter aspect
        // ratios and less area spread than the big-macro designs.
        let (sigma, ar) = match self {
            McncCircuit::Apte | McncCircuit::Xerox | McncCircuit::Hp => (0.8, (0.25, 4.0)),
            McncCircuit::Ami33 | McncCircuit::Ami49 => (0.5, (1.0 / 3.0, 3.0)),
        };
        CircuitGenerator::new(self.name(), self.module_count(), self.net_count())
            .total_area_um2(self.total_area_um2())
            .area_sigma(sigma)
            .aspect_ratio_range(ar.0, ar.1)
            .locality_window((self.module_count() / 2).max(4))
            .seed(0x1234_5678 ^ self as u64)
            .generate()
            // irgrid-lint: allow(P1): parameters are compile-time constants exercised by the benchmark tests
            .expect("benchmark parameters are valid by construction")
    }
}

impl std::fmt::Display for McncCircuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_statistics_hold() {
        for bench in McncCircuit::ALL {
            let c = bench.circuit();
            assert_eq!(c.modules().len(), bench.module_count(), "{bench}");
            assert_eq!(c.nets().len(), bench.net_count(), "{bench}");
            let area = c.total_module_area().0 as f64;
            let target = bench.total_area_um2();
            assert!(
                (area - target).abs() / target < 0.01,
                "{bench}: area {area} vs published {target}"
            );
        }
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(McncCircuit::Ami33.circuit(), McncCircuit::Ami33.circuit());
    }

    #[test]
    fn benchmarks_are_distinct() {
        assert_ne!(McncCircuit::Apte.circuit(), McncCircuit::Xerox.circuit());
    }

    #[test]
    fn name_roundtrip() {
        for bench in McncCircuit::ALL {
            assert_eq!(McncCircuit::from_name(bench.name()), Some(bench));
            assert_eq!(
                McncCircuit::from_name(&bench.name().to_uppercase()),
                Some(bench)
            );
        }
        assert_eq!(McncCircuit::from_name("playstation"), None);
    }

    #[test]
    fn paper_pitches() {
        assert_eq!(McncCircuit::Apte.paper_grid_pitch_um(), 60);
        assert_eq!(McncCircuit::Ami33.paper_grid_pitch_um(), 30);
    }
}
