//! A plain-text circuit interchange format.
//!
//! The MCNC block-level benchmarks came as YAL files; this module
//! provides a minimal, line-oriented equivalent so circuits can be
//! stored, diffed, and shared without this library:
//!
//! ```text
//! # anything after '#' is a comment
//! circuit ami33
//! module cpu 400 300        # name, width um, height um
//! module cache 250 250
//! net cpu_cache cpu cache   # name, then member module names
//! ```
//!
//! One `circuit` line (first non-comment line), then any number of
//! `module` lines, then `net` lines referencing earlier module names.
//!
//! # Examples
//!
//! ```
//! use irgrid_netlist::io;
//! use irgrid_netlist::mcnc::McncCircuit;
//!
//! let circuit = McncCircuit::Hp.circuit();
//! let text = io::to_text(&circuit);
//! let parsed = io::from_text(&text)?;
//! assert_eq!(circuit, parsed);
//! # Ok::<(), irgrid_netlist::io::ParseCircuitError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use irgrid_geom::Um;

use crate::{BuildCircuitError, Circuit, Module, ModuleId, Net};

/// Error parsing the text circuit format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCircuitError {
    /// 1-based line number of the offending line (0 for file-level
    /// errors).
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The kinds of [`ParseCircuitError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// The first statement was not `circuit <name>`.
    MissingCircuitHeader,
    /// A line began with an unknown keyword.
    UnknownKeyword(String),
    /// A statement had the wrong number of tokens.
    WrongArity {
        /// The keyword of the statement.
        keyword: &'static str,
        /// Tokens found (excluding the keyword).
        found: usize,
    },
    /// A dimension failed to parse as a positive integer.
    BadDimension(String),
    /// Two modules share a name.
    DuplicateModule(String),
    /// A net referenced a module name that was never declared.
    UnknownModule(String),
    /// A `module` line appeared after the first `net` line.
    ModuleAfterNet,
    /// The assembled circuit failed semantic validation.
    Invalid(BuildCircuitError),
}

impl fmt::Display for ParseCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::MissingCircuitHeader => {
                write!(f, "expected `circuit <name>` as the first statement")
            }
            ParseErrorKind::UnknownKeyword(kw) => write!(f, "unknown keyword `{kw}`"),
            ParseErrorKind::WrongArity { keyword, found } => {
                write!(f, "`{keyword}` statement has {found} argument(s)")
            }
            ParseErrorKind::BadDimension(tok) => {
                write!(f, "`{tok}` is not a positive integer dimension")
            }
            ParseErrorKind::DuplicateModule(name) => {
                write!(f, "module `{name}` declared twice")
            }
            ParseErrorKind::UnknownModule(name) => {
                write!(f, "net references undeclared module `{name}`")
            }
            ParseErrorKind::ModuleAfterNet => {
                write!(f, "module declarations must precede net declarations")
            }
            ParseErrorKind::Invalid(e) => write!(f, "invalid circuit: {e}"),
        }
    }
}

impl Error for ParseCircuitError {}

/// Serializes a circuit to the text format.
#[must_use]
pub fn to_text(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("circuit {}\n", circuit.name()));
    for module in circuit.modules() {
        out.push_str(&format!(
            "module {} {} {}\n",
            module.name(),
            module.width().0,
            module.height().0
        ));
    }
    for net in circuit.nets() {
        out.push_str(&format!("net {}", net.name()));
        for &pin in net.pins() {
            out.push(' ');
            out.push_str(circuit.module(pin).name());
        }
        out.push('\n');
    }
    out
}

/// Writes a circuit to a file in the text format.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_file(circuit: &Circuit, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, to_text(circuit))
}

/// Reads a circuit from a text-format file.
///
/// # Errors
///
/// Returns an I/O error wrapped as `InvalidData` for parse failures, so
/// callers can use one error type for both failure classes.
pub fn read_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Circuit> {
    let text = std::fs::read_to_string(path)?;
    from_text(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Parses a circuit from the text format.
///
/// # Errors
///
/// Returns a [`ParseCircuitError`] with the offending line number for any
/// syntactic or semantic problem; see [`ParseErrorKind`].
pub fn from_text(text: &str) -> Result<Circuit, ParseCircuitError> {
    let mut name: Option<String> = None;
    let mut modules: Vec<Module> = Vec::new();
    let mut ids: HashMap<String, ModuleId> = HashMap::new();
    let mut nets: Vec<Net> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let err = |kind| ParseCircuitError {
            line: line_no,
            kind,
        };
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "circuit" => {
                if tokens.len() != 2 {
                    return Err(err(ParseErrorKind::WrongArity {
                        keyword: "circuit",
                        found: tokens.len() - 1,
                    }));
                }
                if name.is_some() {
                    return Err(err(ParseErrorKind::UnknownKeyword("circuit".into())));
                }
                name = Some(tokens[1].to_string());
            }
            "module" => {
                if name.is_none() {
                    return Err(err(ParseErrorKind::MissingCircuitHeader));
                }
                if !nets.is_empty() {
                    return Err(err(ParseErrorKind::ModuleAfterNet));
                }
                if tokens.len() != 4 {
                    return Err(err(ParseErrorKind::WrongArity {
                        keyword: "module",
                        found: tokens.len() - 1,
                    }));
                }
                let parse_dim = |tok: &str| -> Result<Um, ParseCircuitError> {
                    tok.parse::<i64>()
                        .ok()
                        .filter(|&v| v > 0)
                        .map(Um)
                        .ok_or_else(|| err(ParseErrorKind::BadDimension(tok.to_string())))
                };
                let module_name = tokens[1].to_string();
                if ids.contains_key(&module_name) {
                    return Err(err(ParseErrorKind::DuplicateModule(module_name)));
                }
                let module =
                    Module::new(&module_name, parse_dim(tokens[2])?, parse_dim(tokens[3])?)
                        .map_err(|e| err(ParseErrorKind::Invalid(e)))?;
                ids.insert(module_name, ModuleId(modules.len() as u32));
                modules.push(module);
            }
            "net" => {
                if name.is_none() {
                    return Err(err(ParseErrorKind::MissingCircuitHeader));
                }
                if tokens.len() < 4 {
                    return Err(err(ParseErrorKind::WrongArity {
                        keyword: "net",
                        found: tokens.len() - 1,
                    }));
                }
                let members: Vec<ModuleId> = tokens[2..]
                    .iter()
                    .map(|&tok| {
                        ids.get(tok)
                            .copied()
                            .ok_or_else(|| err(ParseErrorKind::UnknownModule(tok.to_string())))
                    })
                    .collect::<Result<_, _>>()?;
                let net =
                    Net::new(tokens[1], members).map_err(|e| err(ParseErrorKind::Invalid(e)))?;
                nets.push(net);
            }
            other => {
                if name.is_none() {
                    return Err(err(ParseErrorKind::MissingCircuitHeader));
                }
                return Err(err(ParseErrorKind::UnknownKeyword(other.to_string())));
            }
        }
    }

    let name = name.ok_or(ParseCircuitError {
        line: 0,
        kind: ParseErrorKind::MissingCircuitHeader,
    })?;
    Circuit::new(name, modules, nets).map_err(|e| ParseCircuitError {
        line: 0,
        kind: ParseErrorKind::Invalid(e),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcnc::McncCircuit;

    #[test]
    fn roundtrip_all_benchmarks() {
        for bench in McncCircuit::ALL {
            let circuit = bench.circuit();
            let parsed = from_text(&to_text(&circuit)).expect("roundtrip");
            assert_eq!(circuit, parsed, "{bench}");
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "\n# header comment\ncircuit c # trailing\n\nmodule a 10 20\nmodule b 5 5 # square\nnet n a b\n";
        let c = from_text(text).expect("valid");
        assert_eq!(c.name(), "c");
        assert_eq!(c.modules().len(), 2);
        assert_eq!(c.nets().len(), 1);
    }

    #[test]
    fn missing_header() {
        let e = from_text("module a 10 20\n").expect_err("no header");
        assert_eq!(e.line, 1);
        assert_eq!(e.kind, ParseErrorKind::MissingCircuitHeader);
        let e = from_text("# only comments\n").expect_err("empty");
        assert_eq!(e.line, 0);
    }

    #[test]
    fn bad_dimension_reports_line() {
        let e = from_text("circuit c\nmodule a ten 20\n").expect_err("bad dim");
        assert_eq!(e.line, 2);
        assert_eq!(e.kind, ParseErrorKind::BadDimension("ten".into()));
        let e = from_text("circuit c\nmodule a -3 20\n").expect_err("negative dim");
        assert_eq!(e.kind, ParseErrorKind::BadDimension("-3".into()));
    }

    #[test]
    fn duplicate_module_rejected() {
        let e = from_text("circuit c\nmodule a 1 1\nmodule a 2 2\n").expect_err("dup");
        assert_eq!(e.line, 3);
        assert_eq!(e.kind, ParseErrorKind::DuplicateModule("a".into()));
    }

    #[test]
    fn unknown_module_in_net() {
        let e = from_text("circuit c\nmodule a 1 1\nnet n a ghost\n").expect_err("ghost");
        assert_eq!(e.line, 3);
        assert_eq!(e.kind, ParseErrorKind::UnknownModule("ghost".into()));
    }

    #[test]
    fn module_after_net_rejected() {
        let text = "circuit c\nmodule a 1 1\nmodule b 1 1\nnet n a b\nmodule z 1 1\n";
        let e = from_text(text).expect_err("late module");
        assert_eq!(e.line, 5);
        assert_eq!(e.kind, ParseErrorKind::ModuleAfterNet);
    }

    #[test]
    fn net_arity() {
        let e = from_text("circuit c\nmodule a 1 1\nnet n a\n").expect_err("1-pin net");
        assert!(matches!(
            e.kind,
            ParseErrorKind::WrongArity { keyword: "net", .. }
        ));
    }

    #[test]
    fn degenerate_net_is_semantic_error() {
        // Two tokens referencing the same module dedupe to one pin.
        let e = from_text("circuit c\nmodule a 1 1\nnet n a a\n").expect_err("self net");
        assert!(matches!(e.kind, ParseErrorKind::Invalid(_)));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn unknown_keyword() {
        let e = from_text("circuit c\nblock a 1 1\n").expect_err("keyword");
        assert_eq!(e.kind, ParseErrorKind::UnknownKeyword("block".into()));
    }

    #[test]
    fn file_roundtrip() {
        let circuit = McncCircuit::Apte.circuit();
        let path = std::env::temp_dir().join("irgrid_io_roundtrip_test.circuit");
        write_file(&circuit, &path).expect("write");
        let parsed = read_file(&path).expect("read");
        assert_eq!(circuit, parsed);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_file_wraps_parse_errors() {
        let path = std::env::temp_dir().join("irgrid_io_bad_test.circuit");
        std::fs::write(&path, "module before header 1 1\n").expect("write");
        let err = read_file(&path).expect_err("parse failure");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_messages_carry_context() {
        let e = from_text("circuit c\nmodule a ten 20\n").expect_err("bad dim");
        let msg = e.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("ten"), "{msg}");
    }

    #[test]
    fn truncated_lines_report_arity_with_line_number() {
        // A module line cut off mid-way (e.g. a truncated download).
        let e = from_text("circuit c\nmodule a 10\n").expect_err("truncated module");
        assert_eq!(e.line, 2);
        assert_eq!(
            e.kind,
            ParseErrorKind::WrongArity {
                keyword: "module",
                found: 2
            }
        );
        // A net line with the name but no members.
        let e = from_text("circuit c\nmodule a 1 1\nnet n\n").expect_err("truncated net");
        assert_eq!(e.line, 3);
        assert!(matches!(
            e.kind,
            ParseErrorKind::WrongArity { keyword: "net", .. }
        ));
        // A bare keyword.
        let e = from_text("circuit\n").expect_err("bare keyword");
        assert_eq!(e.line, 1);
        assert!(matches!(
            e.kind,
            ParseErrorKind::WrongArity {
                keyword: "circuit",
                found: 0
            }
        ));
    }

    #[test]
    fn absurd_dimensions_rejected_not_wrapped() {
        // Larger than i64: must be a parse error, not a silent wrap.
        let e = from_text("circuit c\nmodule a 99999999999999999999999999 20\n")
            .expect_err("overflow dim");
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, ParseErrorKind::BadDimension(_)));
        // Zero is not a positive dimension.
        let e = from_text("circuit c\nmodule a 0 20\n").expect_err("zero dim");
        assert_eq!(e.kind, ParseErrorKind::BadDimension("0".into()));
    }

    #[test]
    fn second_circuit_header_rejected() {
        let e = from_text("circuit c\ncircuit d\n").expect_err("two headers");
        assert_eq!(e.line, 2);
    }

    proptest::proptest! {
        /// Arbitrary bytes of printable text must never panic the parser —
        /// every input is either a circuit or a line-tagged error.
        #[test]
        fn parser_never_panics(
            lines in proptest::collection::vec(".{0,60}", 0..20usize)
        ) {
            let text = lines.join("\n");
            match from_text(&text) {
                Ok(circuit) => proptest::prop_assert!(!circuit.modules().is_empty()),
                Err(e) => proptest::prop_assert!(e.line <= lines.len()),
            }
        }

        /// Keyword-shaped garbage must fail with the offending line.
        #[test]
        fn malformed_statements_report_a_line(
            keyword in "(module|net|circuit|garbage)",
            args in proptest::collection::vec("[a-z0-9-]{1,8}", 0..6usize)
        ) {
            let text = format!("circuit c\n{} {}\n", keyword, args.join(" "));
            if let Err(e) = from_text(&text) {
                proptest::prop_assert!(e.line >= 1 && e.line <= 2, "line {}", e.line);
            }
        }
    }
}
