//! A validated circuit: modules plus nets.

use std::fmt;

use irgrid_geom::UmArea;
use serde::{Deserialize, Serialize};

use crate::{BuildCircuitError, Module, ModuleId, Net, NetId};

/// A validated circuit: a set of hard modules and the multi-pin nets
/// connecting them.
///
/// Invariants established at construction and relied on downstream:
///
/// * at least one module; every module has positive dimensions;
/// * every net references only in-range module ids and at least two
///   distinct modules.
///
/// # Examples
///
/// ```
/// use irgrid_geom::Um;
/// use irgrid_netlist::{Circuit, Module, ModuleId, Net};
///
/// let circuit = Circuit::new(
///     "tiny",
///     vec![
///         Module::new("a", Um(100), Um(100))?,
///         Module::new("b", Um(50), Um(200))?,
///     ],
///     vec![Net::new("ab", vec![ModuleId(0), ModuleId(1)])?],
/// )?;
/// assert_eq!(circuit.total_module_area().0, 100 * 100 + 50 * 200);
/// # Ok::<(), irgrid_netlist::BuildCircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Circuit {
    name: String,
    modules: Vec<Module>,
    nets: Vec<Net>,
}

impl Circuit {
    /// Creates a circuit, validating all cross-references.
    ///
    /// # Errors
    ///
    /// * [`BuildCircuitError::NoModules`] if `modules` is empty.
    /// * [`BuildCircuitError::DanglingPin`] if a net references a module id
    ///   `>= modules.len()`.
    pub fn new(
        name: impl Into<String>,
        modules: Vec<Module>,
        nets: Vec<Net>,
    ) -> Result<Circuit, BuildCircuitError> {
        if modules.is_empty() {
            return Err(BuildCircuitError::NoModules);
        }
        for (i, net) in nets.iter().enumerate() {
            for &pin in net.pins() {
                if pin.index() >= modules.len() {
                    return Err(BuildCircuitError::DanglingPin {
                        net: NetId(i as u32),
                        module: pin,
                        module_count: modules.len(),
                    });
                }
            }
        }
        Ok(Circuit {
            name: name.into(),
            modules,
            nets,
        })
    }

    /// Circuit name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All modules, indexable by [`ModuleId::index`].
    #[must_use]
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// All nets, indexable by [`NetId::index`].
    #[must_use]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The module with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (cannot happen for ids obtained from
    /// this circuit).
    #[must_use]
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Iterator over `(ModuleId, &Module)` pairs.
    pub fn modules_with_ids(&self) -> impl Iterator<Item = (ModuleId, &Module)> {
        self.modules
            .iter()
            .enumerate()
            .map(|(i, m)| (ModuleId(i as u32), m))
    }

    /// Iterator over `(NetId, &Net)` pairs.
    pub fn nets_with_ids(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Sum of all module areas (a lower bound on any packing's area).
    #[must_use]
    pub fn total_module_area(&self) -> UmArea {
        self.modules.iter().map(Module::area).sum()
    }

    /// Total number of pins over all nets.
    #[must_use]
    pub fn pin_count(&self) -> usize {
        self.nets.iter().map(Net::degree).sum()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} modules, {} nets, {} pins",
            self.name,
            self.modules.len(),
            self.nets.len(),
            self.pin_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irgrid_geom::Um;

    fn modules(n: u32) -> Vec<Module> {
        (0..n)
            .map(|i| Module::new(format!("m{i}"), Um(10 + i64::from(i)), Um(10)).expect("valid"))
            .collect()
    }

    #[test]
    fn new_validates_pin_references() {
        let nets = vec![Net::new("bad", vec![ModuleId(0), ModuleId(9)]).expect("valid net")];
        let err = Circuit::new("c", modules(2), nets).expect_err("dangling pin");
        assert!(matches!(err, BuildCircuitError::DanglingPin { .. }));
    }

    #[test]
    fn new_rejects_empty_module_list() {
        let err = Circuit::new("c", vec![], vec![]).expect_err("no modules");
        assert_eq!(err, BuildCircuitError::NoModules);
    }

    #[test]
    fn accessors_and_stats() {
        let nets = vec![
            Net::new("n0", vec![ModuleId(0), ModuleId(1)]).expect("valid"),
            Net::new("n1", vec![ModuleId(0), ModuleId(1), ModuleId(2)]).expect("valid"),
        ];
        let c = Circuit::new("c", modules(3), nets).expect("valid circuit");
        assert_eq!(c.pin_count(), 5);
        assert_eq!(c.module(ModuleId(1)).name(), "m1");
        assert_eq!(c.net(NetId(1)).degree(), 3);
        assert_eq!(c.modules_with_ids().count(), 3);
        assert_eq!(c.nets_with_ids().count(), 2);
        assert_eq!(
            c.total_module_area(),
            Um(10) * Um(10) + Um(11) * Um(10) + Um(12) * Um(10)
        );
        assert_eq!(c.to_string(), "c: 3 modules, 2 nets, 5 pins");
    }
}
