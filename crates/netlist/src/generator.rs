//! Parameterized synthetic circuit generation.
//!
//! The generator produces deterministic circuits from a seed, with
//! controllable module count, net count, total module area, module aspect
//! ratios, area spread, and net fan-out distribution. It backs the
//! MCNC-like benchmark suite ([`crate::mcnc`]) and the scaling sweeps in the
//! bench harness.

use irgrid_geom::Um;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{BuildCircuitError, Circuit, Module, ModuleId, Net};

/// Builder for deterministic synthetic circuits.
///
/// # Examples
///
/// ```
/// use irgrid_netlist::generator::CircuitGenerator;
///
/// let circuit = CircuitGenerator::new("demo", 12, 30)
///     .total_area_um2(4.0e6)
///     .seed(7)
///     .generate()?;
/// assert_eq!(circuit.modules().len(), 12);
/// assert_eq!(circuit.nets().len(), 30);
/// // Deterministic: the same parameters always give the same circuit.
/// let again = CircuitGenerator::new("demo", 12, 30)
///     .total_area_um2(4.0e6)
///     .seed(7)
///     .generate()?;
/// assert_eq!(circuit, again);
/// # Ok::<(), irgrid_netlist::BuildCircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CircuitGenerator {
    name: String,
    module_count: usize,
    net_count: usize,
    total_area_um2: f64,
    aspect_ratio_range: (f64, f64),
    area_sigma: f64,
    degree_weights: Vec<(usize, f64)>,
    locality_window: usize,
    seed: u64,
}

impl CircuitGenerator {
    /// Creates a generator for a circuit with the given module and net
    /// counts. Defaults: 1 mm² total area, aspect ratios in [1/3, 3],
    /// lognormal area spread σ = 0.6, fan-out distribution 60 % 2-pin /
    /// 20 % 3-pin / 12 % 4-pin / 8 % 5-pin, locality window = module count
    /// (no locality bias), seed 0.
    #[must_use]
    pub fn new(name: impl Into<String>, module_count: usize, net_count: usize) -> Self {
        CircuitGenerator {
            name: name.into(),
            module_count,
            net_count,
            total_area_um2: 1.0e6,
            aspect_ratio_range: (1.0 / 3.0, 3.0),
            area_sigma: 0.6,
            degree_weights: vec![(2, 0.60), (3, 0.20), (4, 0.12), (5, 0.08)],
            locality_window: module_count,
            seed: 0,
        }
    }

    /// Sets the target total module area in µm². The sampled module areas
    /// are rescaled so their sum matches this within rounding.
    #[must_use]
    pub fn total_area_um2(mut self, area: f64) -> Self {
        self.total_area_um2 = area;
        self
    }

    /// Sets the allowed module aspect-ratio range (width / height).
    #[must_use]
    pub fn aspect_ratio_range(mut self, lo: f64, hi: f64) -> Self {
        self.aspect_ratio_range = (lo, hi);
        self
    }

    /// Sets the lognormal σ of the module area distribution (0 = all
    /// modules equal-area).
    #[must_use]
    pub fn area_sigma(mut self, sigma: f64) -> Self {
        self.area_sigma = sigma;
        self
    }

    /// Sets the net fan-out distribution as `(degree, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any degree is < 2 or the weights are all zero.
    #[must_use]
    pub fn degree_weights(mut self, weights: Vec<(usize, f64)>) -> Self {
        assert!(
            weights.iter().all(|&(d, _)| d >= 2),
            "net degrees must be at least 2"
        );
        assert!(
            weights.iter().map(|&(_, w)| w).sum::<f64>() > 0.0,
            "degree weights must not all be zero"
        );
        self.degree_weights = weights;
        self
    }

    /// Sets the locality window: net members are drawn from a window of
    /// this many module ids around a randomly chosen anchor. Smaller
    /// windows give more local (less congesting) netlists.
    #[must_use]
    pub fn locality_window(mut self, window: usize) -> Self {
        self.locality_window = window.max(2);
        self
    }

    /// Sets the RNG seed. Same seed + same parameters = same circuit.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are degenerate (zero modules, or
    /// nets cannot find two distinct members — impossible for
    /// `module_count >= 2`).
    pub fn generate(&self) -> Result<Circuit, BuildCircuitError> {
        if self.module_count == 0 {
            return Err(BuildCircuitError::NoModules);
        }
        if self.module_count < 2 && self.net_count > 0 {
            // A net needs two distinct modules; with one module every
            // net is degenerate.
            return Err(BuildCircuitError::DegenerateNet {
                name: format!("{}_n0", self.name),
                distinct_pins: 1,
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let modules = self.generate_modules(&mut rng)?;
        let nets = self.generate_nets(&mut rng)?;
        Circuit::new(self.name.clone(), modules, nets)
    }

    fn generate_modules(&self, rng: &mut ChaCha8Rng) -> Result<Vec<Module>, BuildCircuitError> {
        // Sample relative areas from a lognormal, then rescale to the
        // target total.
        let mut rel: Vec<f64> = (0..self.module_count)
            .map(|_| (self.area_sigma * standard_normal(rng)).exp())
            .collect();
        let sum: f64 = rel.iter().sum();
        for r in &mut rel {
            *r *= self.total_area_um2 / sum;
        }

        let (ar_lo, ar_hi) = self.aspect_ratio_range;
        rel.iter()
            .enumerate()
            .map(|(i, &area)| {
                // Sample aspect ratio log-uniformly so 1/2 and 2 are
                // equally likely.
                let ar = (rng.gen_range(ar_lo.ln()..=ar_hi.ln())).exp();
                let w = (area * ar).sqrt().round().max(1.0) as i64;
                let h = (area / w as f64).round().max(1.0) as i64;
                Module::new(format!("{}_{i}", self.name), Um(w), Um(h))
            })
            .collect()
    }

    fn generate_nets(&self, rng: &mut ChaCha8Rng) -> Result<Vec<Net>, BuildCircuitError> {
        let total_weight: f64 = self.degree_weights.iter().map(|&(_, w)| w).sum();
        (0..self.net_count)
            .map(|i| {
                let mut pick = rng.gen_range(0.0..total_weight);
                let mut degree = self.degree_weights[0].0;
                for &(d, w) in &self.degree_weights {
                    if pick < w {
                        degree = d;
                        break;
                    }
                    pick -= w;
                }
                let degree = degree.min(self.module_count);
                let members = self.pick_members(rng, degree.max(2));
                Net::new(format!("{}_n{i}", self.name), members)
            })
            .collect()
    }

    fn pick_members(&self, rng: &mut ChaCha8Rng, degree: usize) -> Vec<ModuleId> {
        let n = self.module_count;
        debug_assert!(
            n >= 2,
            "generate() rejects net generation with fewer than 2 modules"
        );
        let window = self.locality_window.min(n);
        let anchor = rng.gen_range(0..n);
        let lo = anchor.saturating_sub(window / 2);
        let hi = (lo + window).min(n);
        let lo = hi.saturating_sub(window);
        let mut members = vec![ModuleId(anchor as u32)];
        // Rejection-sample distinct members from the window; fall back to
        // the full id range if the window is too small to supply enough
        // distinct modules.
        let mut attempts = 0;
        while members.len() < degree {
            let range = if attempts < 8 * degree { lo..hi } else { 0..n };
            let candidate = ModuleId(rng.gen_range(range) as u32);
            if !members.contains(&candidate) {
                members.push(candidate);
            }
            attempts += 1;
        }
        members
    }
}

/// Standard-normal sample via Box–Muller (rand itself ships no Gaussian).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = CircuitGenerator::new("d", 20, 50)
            .seed(42)
            .generate()
            .expect("gen");
        let b = CircuitGenerator::new("d", 20, 50)
            .seed(42)
            .generate()
            .expect("gen");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CircuitGenerator::new("d", 20, 50)
            .seed(1)
            .generate()
            .expect("gen");
        let b = CircuitGenerator::new("d", 20, 50)
            .seed(2)
            .generate()
            .expect("gen");
        assert_ne!(a, b);
    }

    #[test]
    fn total_area_close_to_target() {
        let target = 5.0e6;
        let c = CircuitGenerator::new("d", 30, 10)
            .total_area_um2(target)
            .seed(3)
            .generate()
            .expect("gen");
        let actual = c.total_module_area().0 as f64;
        // Integer rounding of 30 module dimensions stays well within 1%.
        assert!(
            (actual - target).abs() / target < 0.01,
            "actual {actual} vs target {target}"
        );
    }

    #[test]
    fn aspect_ratios_respected() {
        let c = CircuitGenerator::new("d", 50, 0)
            .aspect_ratio_range(0.5, 2.0)
            .total_area_um2(1e8)
            .seed(4)
            .generate()
            .expect("gen");
        for m in c.modules() {
            let ar = m.width().as_f64() / m.height().as_f64();
            // Allow slack for integer rounding.
            assert!((0.4..=2.5).contains(&ar), "aspect ratio {ar} out of range");
        }
    }

    #[test]
    fn nets_have_declared_degrees() {
        let c = CircuitGenerator::new("d", 40, 200)
            .degree_weights(vec![(3, 1.0)])
            .seed(5)
            .generate()
            .expect("gen");
        assert!(c.nets().iter().all(|n| n.degree() == 3));
    }

    #[test]
    fn degree_clamped_to_module_count() {
        let c = CircuitGenerator::new("d", 2, 10)
            .degree_weights(vec![(5, 1.0)])
            .seed(6)
            .generate()
            .expect("gen");
        assert!(c.nets().iter().all(|n| n.degree() == 2));
    }

    #[test]
    fn locality_window_limits_span() {
        let c = CircuitGenerator::new("d", 100, 300)
            .locality_window(10)
            .seed(7)
            .generate()
            .expect("gen");
        // Most nets should span a small id range; allow the documented
        // fallback to widen a few.
        let local = c
            .nets()
            .iter()
            .filter(|n| {
                let ids: Vec<u32> = n.pins().iter().map(|p| p.0).collect();
                ids.iter().max().unwrap() - ids.iter().min().unwrap() <= 10
            })
            .count();
        assert!(
            local * 10 >= c.nets().len() * 9,
            "{local} of {} nets local",
            c.nets().len()
        );
    }

    #[test]
    fn zero_modules_is_an_error() {
        assert!(CircuitGenerator::new("d", 0, 0).generate().is_err());
    }

    #[test]
    fn one_module_with_nets_is_an_error() {
        // Regression: this used to hang in member rejection sampling.
        let err = CircuitGenerator::new("d", 1, 3)
            .generate()
            .expect_err("degenerate");
        assert!(matches!(err, BuildCircuitError::DegenerateNet { .. }));
        // One module with no nets is fine.
        assert!(CircuitGenerator::new("d", 1, 0).generate().is_ok());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
