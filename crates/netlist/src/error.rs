//! Circuit construction errors.

use std::error::Error;
use std::fmt;

use irgrid_geom::Um;

use crate::{ModuleId, NetId};

/// Error building a [`Circuit`](crate::Circuit) or one of its parts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildCircuitError {
    /// A module had a non-positive width or height.
    EmptyModule {
        /// Offending module name.
        name: String,
        /// Requested width.
        width: Um,
        /// Requested height.
        height: Um,
    },
    /// A net connected fewer than two distinct modules.
    DegenerateNet {
        /// Offending net name.
        name: String,
        /// Number of distinct modules after dedup.
        distinct_pins: usize,
    },
    /// A net referenced a module id outside the circuit.
    DanglingPin {
        /// The net with the bad reference.
        net: NetId,
        /// The out-of-range module id.
        module: ModuleId,
        /// Number of modules in the circuit.
        module_count: usize,
    },
    /// The circuit had no modules at all.
    NoModules,
}

impl fmt::Display for BuildCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCircuitError::EmptyModule {
                name,
                width,
                height,
            } => write!(
                f,
                "module `{name}` has non-positive dimensions {width} x {height}"
            ),
            BuildCircuitError::DegenerateNet {
                name,
                distinct_pins,
            } => write!(
                f,
                "net `{name}` connects {distinct_pins} distinct module(s), need at least 2"
            ),
            BuildCircuitError::DanglingPin {
                net,
                module,
                module_count,
            } => write!(
                f,
                "net {net} references module {module} but the circuit has only {module_count} modules"
            ),
            BuildCircuitError::NoModules => write!(f, "circuit has no modules"),
        }
    }
}

impl Error for BuildCircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e = BuildCircuitError::DanglingPin {
            net: NetId(4),
            module: ModuleId(99),
            module_count: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("N4"));
        assert!(msg.contains("M99"));
        assert!(msg.contains("10"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<BuildCircuitError>();
    }
}
