//! Multi-pin nets.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ModuleId;

/// Index of a net within its [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub u32);

impl NetId {
    /// The id as a vector index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A net connecting two or more distinct modules.
///
/// Nets are hypergraph edges over modules; the physical pin locations are
/// only known once a floorplan places the modules (pin placement lives in
/// `irgrid-floorplan`). Multi-pin nets are decomposed into 2-pin nets by a
/// minimum spanning tree ([`crate::mst`]) before congestion estimation, as
/// in §5 of the paper.
///
/// # Examples
///
/// ```
/// use irgrid_netlist::{ModuleId, Net};
///
/// let net = Net::new("clk", vec![ModuleId(0), ModuleId(2), ModuleId(5)])?;
/// assert_eq!(net.pins().len(), 3);
/// # Ok::<(), irgrid_netlist::BuildCircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Net {
    name: String,
    pins: Vec<ModuleId>,
}

impl Net {
    /// Creates a net over the given modules.
    ///
    /// Duplicate module references are removed (a net touching the same
    /// block twice routes within the block and contributes nothing to
    /// inter-block congestion).
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError::DegenerateNet`](crate::BuildCircuitError)
    /// if fewer than two *distinct* modules remain.
    pub fn new(
        name: impl Into<String>,
        mut pins: Vec<ModuleId>,
    ) -> Result<Net, crate::BuildCircuitError> {
        let name = name.into();
        pins.sort_unstable();
        pins.dedup();
        if pins.len() < 2 {
            return Err(crate::BuildCircuitError::DegenerateNet {
                name,
                distinct_pins: pins.len(),
            });
        }
        Ok(Net { name, pins })
    }

    /// Net name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The distinct modules this net connects, in ascending id order.
    #[must_use]
    pub fn pins(&self) -> &[ModuleId] {
        &self.pins
    }

    /// Number of distinct pins.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.pins.len()
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} pins)", self.name, self.pins.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_dedupes_and_sorts() {
        let n = Net::new("n", vec![ModuleId(5), ModuleId(1), ModuleId(5)]).expect("valid net");
        assert_eq!(n.pins(), &[ModuleId(1), ModuleId(5)]);
        assert_eq!(n.degree(), 2);
    }

    #[test]
    fn new_rejects_single_module_nets() {
        assert!(Net::new("n", vec![ModuleId(3), ModuleId(3)]).is_err());
        assert!(Net::new("n", vec![ModuleId(3)]).is_err());
        assert!(Net::new("n", vec![]).is_err());
    }

    #[test]
    fn display() {
        let n = Net::new("clk", vec![ModuleId(0), ModuleId(1)]).expect("valid net");
        assert_eq!(n.to_string(), "clk (2 pins)");
        assert_eq!(NetId(3).to_string(), "N3");
    }
}
