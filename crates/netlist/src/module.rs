//! Hard modules (blocks).

use std::fmt;

use irgrid_geom::{Um, UmArea};
use serde::{Deserialize, Serialize};

/// Index of a module within its [`Circuit`](crate::Circuit).
///
/// `ModuleId`s are dense (`0..circuit.modules().len()`), so per-module data
/// can live in plain vectors indexed by `id.index()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModuleId(pub u32);

impl ModuleId {
    /// The id as a vector index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// A hard rectangular module (block) with fixed dimensions.
///
/// Modules may be rotated by 90° by the floorplanner but never reshaped.
///
/// # Examples
///
/// ```
/// use irgrid_geom::Um;
/// use irgrid_netlist::Module;
///
/// let m = Module::new("alu", Um(400), Um(250))?;
/// assert_eq!(m.area().0, 100_000);
/// # Ok::<(), irgrid_netlist::BuildCircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Module {
    name: String,
    width: Um,
    height: Um,
}

impl Module {
    /// Creates a module from its name and dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError::EmptyModule`](crate::BuildCircuitError)
    /// if either dimension is not positive — zero-area blocks would make
    /// packing and pin placement ill-defined.
    pub fn new(
        name: impl Into<String>,
        width: Um,
        height: Um,
    ) -> Result<Module, crate::BuildCircuitError> {
        let name = name.into();
        if width <= Um::ZERO || height <= Um::ZERO {
            return Err(crate::BuildCircuitError::EmptyModule {
                name,
                width,
                height,
            });
        }
        Ok(Module {
            name,
            width,
            height,
        })
    }

    /// Module name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width in the un-rotated orientation.
    #[must_use]
    pub fn width(&self) -> Um {
        self.width
    }

    /// Height in the un-rotated orientation.
    #[must_use]
    pub fn height(&self) -> Um {
        self.height
    }

    /// Module area (orientation-independent).
    #[must_use]
    pub fn area(&self) -> UmArea {
        self.width * self.height
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} x {})", self.name, self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_positive_dims() {
        let m = Module::new("m", Um(10), Um(20)).expect("valid module");
        assert_eq!(m.name(), "m");
        assert_eq!(m.area(), Um(10) * Um(20));
    }

    #[test]
    fn new_rejects_zero_or_negative_dims() {
        assert!(Module::new("m", Um(0), Um(20)).is_err());
        assert!(Module::new("m", Um(10), Um(0)).is_err());
        assert!(Module::new("m", Um(-1), Um(20)).is_err());
    }

    #[test]
    fn display_mentions_dims() {
        let m = Module::new("alu", Um(3), Um(4)).expect("valid module");
        assert_eq!(m.to_string(), "alu (3um x 4um)");
        assert_eq!(ModuleId(7).to_string(), "M7");
    }
}
