//! Property-based tests for circuits, the generator, and the MST.

use irgrid_geom::{Point, Um};
use irgrid_netlist::generator::CircuitGenerator;
use irgrid_netlist::mst::{decompose, manhattan_mst, mst_length};
use proptest::prelude::*;

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (-1000i64..1000, -1000i64..1000).prop_map(|(x, y)| Point::new(Um(x), Um(y))),
        0..12,
    )
}

proptest! {
    #[test]
    fn mst_has_n_minus_one_edges(points in arb_points()) {
        let edges = manhattan_mst(&points);
        prop_assert_eq!(edges.len(), points.len().saturating_sub(1));
        for &(a, b) in &edges {
            prop_assert!(a < b && b < points.len());
        }
    }

    #[test]
    fn mst_spans_all_points(points in arb_points()) {
        prop_assume!(points.len() >= 2);
        let edges = manhattan_mst(&points);
        let mut reached = vec![false; points.len()];
        reached[0] = true;
        // Edges from Prim come in tree-growth order, but verify
        // connectivity order-independently.
        let mut changed = true;
        while changed {
            changed = false;
            for &(a, b) in &edges {
                if reached[a] != reached[b] {
                    reached[a] = true;
                    reached[b] = true;
                    changed = true;
                }
            }
        }
        prop_assert!(reached.iter().all(|&r| r), "MST not spanning");
    }

    #[test]
    fn mst_length_is_minimal_among_stars(points in arb_points()) {
        // The MST is no longer than any star decomposition rooted at any
        // point (a star is a spanning tree).
        prop_assume!(points.len() >= 2);
        let mst = mst_length(&points);
        for root in 0..points.len() {
            let star: Um = points
                .iter()
                .map(|p| points[root].manhattan_distance(*p))
                .sum();
            prop_assert!(mst <= star, "MST {mst} beats star {star} at root {root}");
        }
    }

    #[test]
    fn mst_invariant_under_translation(points in arb_points(), dx in -500i64..500, dy in -500i64..500) {
        let moved: Vec<Point> = points
            .iter()
            .map(|p| Point::new(p.x + Um(dx), p.y + Um(dy)))
            .collect();
        prop_assert_eq!(mst_length(&points), mst_length(&moved));
    }

    #[test]
    fn decompose_length_matches(points in arb_points()) {
        let total: Um = decompose(&points)
            .iter()
            .map(|(a, b)| a.manhattan_distance(*b))
            .sum();
        prop_assert_eq!(total, mst_length(&points));
    }

    #[test]
    fn generator_rejects_single_module_nets(nets in 1usize..20, seed in 0u64..100) {
        // Regression guard: this configuration used to hang.
        let result = CircuitGenerator::new("p", 1, nets).seed(seed).generate();
        prop_assert!(result.is_err());
    }

    #[test]
    fn generator_respects_counts(modules in 2usize..40, nets in 0usize..60, seed in 0u64..100) {
        let c = CircuitGenerator::new("p", modules, nets)
            .seed(seed)
            .generate()
            .expect("valid parameters");
        prop_assert_eq!(c.modules().len(), modules);
        prop_assert_eq!(c.nets().len(), nets);
        for m in c.modules() {
            prop_assert!(m.width() > Um::ZERO && m.height() > Um::ZERO);
        }
        for n in c.nets() {
            prop_assert!(n.degree() >= 2);
            for &pin in n.pins() {
                prop_assert!(pin.index() < modules);
            }
        }
    }

    #[test]
    fn generator_area_scales(modules in 2usize..30, area in 1.0e5f64..1.0e8, seed in 0u64..50) {
        let c = CircuitGenerator::new("p", modules, 0)
            .total_area_um2(area)
            .seed(seed)
            .generate()
            .expect("valid parameters");
        let actual = c.total_module_area().0 as f64;
        prop_assert!((actual - area).abs() / area < 0.05, "{actual} vs {area}");
    }
}
