//! Property-based tests for the global router.

use irgrid_geom::{Point, Rect, Um};
use irgrid_route::{GlobalRouter, RouterConfig};
use proptest::prelude::*;

fn arb_segments() -> impl Strategy<Value = Vec<(Point, Point)>> {
    prop::collection::vec(
        ((0i64..600, 0i64..600), (0i64..600, 0i64..600)).prop_map(|((ax, ay), (bx, by))| {
            (Point::new(Um(ax), Um(ay)), Point::new(Um(bx), Um(by)))
        }),
        1..14,
    )
}

fn router(capacity: u32) -> GlobalRouter {
    GlobalRouter::new(RouterConfig {
        pitch: Um(30),
        edge_capacity: capacity,
        ..RouterConfig::default()
    })
}

fn chip() -> Rect {
    Rect::from_origin_size(Point::ORIGIN, Um(600), Um(600))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn usage_equals_routed_edges(segments in arb_segments(), capacity in 1u32..6) {
        let result = router(capacity).route(&chip(), &segments);
        let grid = &result.grid;
        let mut usage = 0u64;
        for y in 0..grid.grid().rows() {
            for x in 0..grid.grid().cols() - 1 {
                usage += u64::from(grid.h_edge(x, y).usage);
            }
        }
        for y in 0..grid.grid().rows() - 1 {
            for x in 0..grid.grid().cols() {
                usage += u64::from(grid.v_edge(x, y).usage);
            }
        }
        prop_assert_eq!(usage, result.routed_edges);
    }

    #[test]
    fn routed_length_at_least_manhattan(segments in arb_segments()) {
        let result = router(4).route(&chip(), &segments);
        // detour_edges computes routed - lower bound; it must not wrap.
        let lower: u64 = segments
            .iter()
            .map(|&(a, b)| {
                let (ax, ay) = result.grid.cell_of(a);
                let (bx, by) = result.grid.cell_of(b);
                ((ax - bx).abs() + (ay - by).abs()) as u64
            })
            .sum();
        prop_assert!(result.routed_edges >= lower);
        prop_assert_eq!(result.detour_edges(&segments), result.routed_edges - lower);
    }

    #[test]
    fn deterministic_across_runs(segments in arb_segments(), capacity in 1u32..6) {
        let a = router(capacity).route(&chip(), &segments);
        let b = router(capacity).route(&chip(), &segments);
        prop_assert_eq!(a.routed_edges, b.routed_edges);
        prop_assert_eq!(a.total_overflow, b.total_overflow);
        prop_assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn generous_capacity_routes_without_overflow(segments in arb_segments()) {
        // Capacity >= net count can always absorb everything on the
        // shortest paths.
        let result = router(14).route(&chip(), &segments);
        prop_assert_eq!(result.total_overflow, 0);
        prop_assert_eq!(result.iterations, 1);
    }

    #[test]
    fn overflow_monotone_in_capacity(segments in arb_segments()) {
        let tight = router(1).route(&chip(), &segments);
        let mid = router(2).route(&chip(), &segments);
        let loose = router(8).route(&chip(), &segments);
        prop_assert!(loose.total_overflow <= mid.total_overflow);
        // Negotiation is heuristic, so strict monotonicity between
        // adjacent capacities is not guaranteed; a generous bound guards
        // against inverted accounting.
        prop_assert!(mid.total_overflow <= tight.total_overflow + 2);
    }

    #[test]
    fn overflow_counts_match_grid(segments in arb_segments(), capacity in 1u32..4) {
        let result = router(capacity).route(&chip(), &segments);
        prop_assert_eq!(result.total_overflow, result.grid.total_overflow());
        if result.total_overflow == 0 {
            prop_assert_eq!(result.grid.overflowed_edges(), 0);
        } else {
            prop_assert!(result.grid.overflowed_edges() > 0);
        }
        prop_assert!(result.grid.peak_usage() >= capacity || result.total_overflow == 0);
    }
}

mod staircase_properties {
    use super::*;
    use irgrid_route::{StaircaseConfig, StaircaseRouter};

    /// A deterministic pseudo-placement: full-height blocks with
    /// channels, so the cut tree has real structure to find.
    fn modules() -> Vec<Rect> {
        vec![
            Rect::from_origin_size(Point::new(Um(0), Um(0)), Um(140), Um(280)),
            Rect::from_origin_size(Point::new(Um(160), Um(0)), Um(130), Um(130)),
            Rect::from_origin_size(Point::new(Um(160), Um(150)), Um(130), Um(130)),
            Rect::from_origin_size(Point::new(Um(310), Um(0)), Um(280), Um(280)),
            Rect::from_origin_size(Point::new(Um(0), Um(300)), Um(280), Um(290)),
            Rect::from_origin_size(Point::new(Um(300), Um(300)), Um(290), Um(290)),
        ]
    }

    fn staircase(seed: u64) -> StaircaseRouter {
        StaircaseRouter::new(StaircaseConfig {
            pitch: Um(30),
            seed,
            ..StaircaseConfig::default()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn usage_map_is_bit_identical_across_runs(
            segments in arb_segments(),
            seed in 0u64..8,
        ) {
            let a = staircase(seed).route(&chip(), &modules(), &segments);
            let b = staircase(seed).route(&chip(), &modules(), &segments);
            prop_assert_eq!(a.usage.counts(), b.usage.counts());
            prop_assert_eq!(a.routed_bins, b.routed_bins);
            prop_assert_eq!(a.cut_count, b.cut_count);
        }

        #[test]
        fn usage_map_is_independent_of_net_order(
            segments in arb_segments(),
            rotation in 0usize..14,
            seed in 0u64..8,
        ) {
            let baseline = staircase(seed).route(&chip(), &modules(), &segments);
            let mut reordered = segments.clone();
            reordered.reverse();
            let split = rotation % reordered.len().max(1);
            reordered.rotate_left(split);
            let shuffled = staircase(seed).route(&chip(), &modules(), &reordered);
            prop_assert_eq!(baseline.usage.counts(), shuffled.usage.counts());
            prop_assert_eq!(baseline.routed_bins, shuffled.routed_bins);
        }

        #[test]
        fn usage_conserves_routed_bins(segments in arb_segments(), seed in 0u64..8) {
            let result = staircase(seed).route(&chip(), &modules(), &segments);
            let total: u64 = result.usage.counts().iter().sum();
            prop_assert_eq!(total, result.routed_bins);
            prop_assert!(result.cut_count + 1 == result.leaf_count);
        }
    }
}
