//! The negotiated-congestion router.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use irgrid_geom::{Point, Rect, Um};

use crate::RoutingGrid;

/// Router tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// Routing-grid pitch.
    pub pitch: Um,
    /// Uniform track capacity per grid edge.
    pub edge_capacity: u32,
    /// Maximum negotiation (rip-up-and-reroute) iterations.
    pub max_iterations: usize,
    /// Cost added per unit of *present* congestion (usage ≥ capacity) on
    /// an edge while routing.
    pub present_penalty: f64,
    /// History increment added to persistently overflowing edges after
    /// each iteration.
    pub history_increment: f64,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            pitch: Um(30),
            edge_capacity: 8,
            max_iterations: 5,
            present_penalty: 2.0,
            history_increment: 1.0,
        }
    }
}

impl RouterConfig {
    fn validate(&self) {
        assert!(
            self.pitch > Um::ZERO,
            "pitch must be positive, got {}",
            self.pitch
        );
        assert!(self.edge_capacity > 0, "edge capacity must be positive");
        assert!(
            self.max_iterations > 0,
            "need at least one routing iteration"
        );
        assert!(
            self.present_penalty >= 0.0 && self.history_increment >= 0.0,
            "penalties must be non-negative"
        );
    }
}

/// The outcome of routing one floorplan's segments.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// The final grid with per-edge usage.
    pub grid: RoutingGrid,
    /// Number of nets routed (all of them — the router always finds a
    /// path on a connected grid).
    pub routed_nets: usize,
    /// Total wirelength of the routed paths, in grid edges.
    pub routed_edges: u64,
    /// Final total overflow (0 = fully routable at this capacity).
    pub total_overflow: u64,
    /// Negotiation iterations actually used.
    pub iterations: usize,
}

impl RouteResult {
    /// Sum of detour lengths versus each net's Manhattan lower bound,
    /// in grid edges.
    #[must_use]
    pub fn detour_edges(&self, segments: &[(Point, Point)]) -> u64 {
        let lower: u64 = segments
            .iter()
            .map(|&(a, b)| {
                let (ax, ay) = self.grid.cell_of(a);
                let (bx, by) = self.grid.cell_of(b);
                ((ax - bx).abs() + (ay - by).abs()) as u64
            })
            .sum();
        self.routed_edges - lower.min(self.routed_edges)
    }
}

/// A deterministic sequential global router with PathFinder-style
/// negotiation.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy)]
pub struct GlobalRouter {
    config: RouterConfig,
}

/// A routing-grid cell coordinate (column, row).
type Cell = (i64, i64);

/// One net's current route, as a list of cells.
type Path = Vec<Cell>;

impl GlobalRouter {
    /// Creates a router.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`RouterConfig`]
    /// fields).
    #[must_use]
    pub fn new(config: RouterConfig) -> GlobalRouter {
        config.validate();
        GlobalRouter { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Routes all 2-pin segments on a fresh grid over `chip`.
    ///
    /// Deterministic: nets are processed in a fixed order (longer nets
    /// first, ties by index — long nets have fewer alternatives, the
    /// classic ordering), and A* tie-breaking is by node index.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is degenerate or not at the origin.
    #[must_use]
    pub fn route(&self, chip: &Rect, segments: &[(Point, Point)]) -> RouteResult {
        let mut grid = RoutingGrid::new(chip, self.config.pitch, self.config.edge_capacity);

        // Net terminals in cells; drop same-cell nets (nothing to route).
        let mut nets: Vec<(usize, Cell, Cell)> = segments
            .iter()
            .enumerate()
            .filter_map(|(i, &(a, b))| {
                let ca = grid.cell_of(a);
                let cb = grid.cell_of(b);
                (ca != cb).then_some((i, ca, cb))
            })
            .collect();
        nets.sort_by_key(|&(i, a, b)| {
            let len = (a.0 - b.0).abs() + (a.1 - b.1).abs();
            (std::cmp::Reverse(len), i)
        });

        let mut paths: Vec<Option<Path>> = vec![None; nets.len()];
        let mut iterations = 0;
        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;
            // Rip up everything and reroute against current history
            // (first iteration: empty grid).
            for (slot, &(_, a, b)) in paths.iter_mut().zip(&nets) {
                if let Some(path) = slot.take() {
                    apply_path(&mut grid, &path, -1);
                }
                let path = self.astar(&grid, a, b);
                apply_path(&mut grid, &path, 1);
                *slot = Some(path);
            }
            if grid.total_overflow() == 0 {
                break;
            }
            grid.bump_history(self.config.history_increment);
        }

        let routed_edges: u64 = paths
            .iter()
            .map(|p| (p.as_ref().map_or(0, |p| p.len().saturating_sub(1))) as u64)
            .sum();
        RouteResult {
            total_overflow: grid.total_overflow(),
            routed_nets: nets.len(),
            routed_edges,
            iterations,
            grid,
        }
    }

    /// A* from cell `a` to cell `b` under the current congestion costs.
    fn astar(&self, grid: &RoutingGrid, a: Cell, b: Cell) -> Path {
        #[derive(PartialEq)]
        struct Entry {
            priority: f64,
            node: usize,
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on (priority, node) — node index breaks ties
                // deterministically.
                other
                    .priority
                    .total_cmp(&self.priority)
                    .then(other.node.cmp(&self.node))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let cols = grid.grid().cols();
        let rows = grid.grid().rows();
        let idx = |x: i64, y: i64| (y * cols + x) as usize;
        let n = (cols * rows) as usize;
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        let h = |x: i64, y: i64| ((x - b.0).abs() + (y - b.1).abs()) as f64;

        dist[idx(a.0, a.1)] = 0.0;
        heap.push(Entry {
            priority: h(a.0, a.1),
            node: idx(a.0, a.1),
        });

        while let Some(Entry { node, priority }) = heap.pop() {
            let (x, y) = ((node as i64) % cols, (node as i64) / cols);
            if (x, y) == b {
                break;
            }
            if priority - h(x, y) > dist[node] + 1e-12 {
                continue; // stale entry
            }
            let mut relax = |nx: i64, ny: i64, edge_cost: f64| {
                let ni = idx(nx, ny);
                let cand = dist[node] + edge_cost;
                if cand < dist[ni] - 1e-15 {
                    dist[ni] = cand;
                    prev[ni] = node;
                    heap.push(Entry {
                        priority: cand + h(nx, ny),
                        node: ni,
                    });
                }
            };
            if x + 1 < cols {
                relax(
                    x + 1,
                    y,
                    self.edge_cost(grid.h_edge(x, y).usage, grid.h_history(x, y)),
                );
            }
            if x > 0 {
                relax(
                    x - 1,
                    y,
                    self.edge_cost(grid.h_edge(x - 1, y).usage, grid.h_history(x - 1, y)),
                );
            }
            if y + 1 < rows {
                relax(
                    x,
                    y + 1,
                    self.edge_cost(grid.v_edge(x, y).usage, grid.v_history(x, y)),
                );
            }
            if y > 0 {
                relax(
                    x,
                    y - 1,
                    self.edge_cost(grid.v_edge(x, y - 1).usage, grid.v_history(x, y - 1)),
                );
            }
        }

        // Reconstruct.
        let mut path = vec![b];
        let mut node = idx(b.0, b.1);
        debug_assert!(
            prev[node] != usize::MAX || a == b,
            "grid is connected, a path exists"
        );
        while prev[node] != usize::MAX {
            node = prev[node];
            path.push(((node as i64) % cols, (node as i64) / cols));
        }
        path.reverse();
        debug_assert_eq!(path.first(), Some(&a));
        path
    }

    /// The cost of crossing one edge given its usage and history.
    fn edge_cost(&self, usage: u32, history: f64) -> f64 {
        let over = (i64::from(usage) + 1 - i64::from(self.config.edge_capacity)).max(0) as f64;
        1.0 + self.config.present_penalty * over + history
    }
}

/// Adds (`delta = 1`) or removes (`delta = -1`) a path's edge usage.
fn apply_path(grid: &mut RoutingGrid, path: &[Cell], delta: i32) {
    for pair in path.windows(2) {
        let ((x0, y0), (x1, y1)) = (pair[0], pair[1]);
        if y0 == y1 {
            grid.add_h(x0.min(x1), y0, delta);
        } else {
            grid.add_v(x0, y0.min(y1), delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip(w: i64, h: i64) -> Rect {
        Rect::from_origin_size(Point::ORIGIN, Um(w), Um(h))
    }

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Um(x), Um(y))
    }

    fn router(capacity: u32) -> GlobalRouter {
        GlobalRouter::new(RouterConfig {
            pitch: Um(30),
            edge_capacity: capacity,
            ..RouterConfig::default()
        })
    }

    #[test]
    fn single_net_routes_at_manhattan_length() {
        let result = router(4).route(&chip(300, 300), &[(pt(15, 15), pt(255, 195))]);
        assert_eq!(result.routed_nets, 1);
        // Cells (0,0) -> (8,6): 14 edges, no congestion, no detour.
        assert_eq!(result.routed_edges, 14);
        assert_eq!(result.total_overflow, 0);
        assert_eq!(result.detour_edges(&[(pt(15, 15), pt(255, 195))]), 0);
    }

    #[test]
    fn same_cell_nets_are_skipped() {
        let result = router(4).route(&chip(300, 300), &[(pt(15, 15), pt(20, 25))]);
        assert_eq!(result.routed_nets, 0);
        assert_eq!(result.routed_edges, 0);
    }

    #[test]
    fn congestion_forces_detours_instead_of_overflow() {
        // Five nets through the same row corridor (distinct pin cells so
        // pin escape is feasible) with capacity 1: the router must spread
        // them vertically rather than overflow.
        let segments: Vec<(Point, Point)> = (0..5)
            .map(|i| (pt(15 + 30 * i, 135), pt(285 - 30 * i, 165)))
            .collect();
        let result = router(1).route(&chip(300, 300), &segments);
        assert_eq!(result.routed_nets, 5);
        assert_eq!(result.total_overflow, 0, "a 10-row chip can absorb 5 nets");
        assert!(
            result.detour_edges(&segments) > 0,
            "overlapping nets must detour around each other"
        );
    }

    #[test]
    fn shared_pin_cell_overflow_is_exactly_the_escape_bottleneck() {
        // Five nets sharing both pin cells: the source cell has only
        // three incident capacity-1 edges, so 2 units of overflow at each
        // end are unavoidable — and the router should not do worse.
        let segments: Vec<(Point, Point)> = (0..5).map(|_| (pt(15, 135), pt(285, 135))).collect();
        let result = router(1).route(&chip(300, 300), &segments);
        assert_eq!(result.total_overflow, 4, "2 at the source + 2 at the sink");
    }

    #[test]
    fn impossible_demand_reports_overflow() {
        // 30 identical nets on a 2-row chip with capacity 1 cannot avoid
        // overflowing.
        let segments: Vec<(Point, Point)> = (0..30).map(|_| (pt(15, 15), pt(285, 15))).collect();
        let result = router(1).route(&chip(300, 60), &segments);
        assert!(result.total_overflow > 0);
        assert!(result.iterations > 1, "negotiation should have retried");
    }

    #[test]
    fn deterministic() {
        let segments: Vec<(Point, Point)> = (0..8)
            .map(|i| (pt(15 + i * 30, 15), pt(285 - i * 20, 285)))
            .collect();
        let a = router(2).route(&chip(300, 300), &segments);
        let b = router(2).route(&chip(300, 300), &segments);
        assert_eq!(a.total_overflow, b.total_overflow);
        assert_eq!(a.routed_edges, b.routed_edges);
        assert_eq!(a.grid.peak_usage(), b.grid.peak_usage());
    }

    #[test]
    fn paths_are_connected_and_valid() {
        let segments = vec![(pt(15, 15), pt(255, 255)), (pt(255, 15), pt(15, 255))];
        let result = router(2).route(&chip(300, 300), &segments);
        // Wirelength accounting: each path's edges were applied exactly
        // once; ripping everything would return usage to zero. Verified
        // indirectly: total usage equals routed_edges.
        let mut usage_sum = 0u64;
        for y in 0..result.grid.grid().rows() {
            for x in 0..result.grid.grid().cols() - 1 {
                usage_sum += u64::from(result.grid.h_edge(x, y).usage);
            }
        }
        for y in 0..result.grid.grid().rows() - 1 {
            for x in 0..result.grid.grid().cols() {
                usage_sum += u64::from(result.grid.v_edge(x, y).usage);
            }
        }
        assert_eq!(usage_sum, result.routed_edges);
    }

    #[test]
    fn more_capacity_never_increases_overflow() {
        let segments: Vec<(Point, Point)> = (0..12)
            .map(|i| (pt(15, 15 + 10 * i), pt(285, 150)))
            .collect();
        let tight = router(1).route(&chip(300, 300), &segments);
        let loose = router(4).route(&chip(300, 300), &segments);
        assert!(loose.total_overflow <= tight.total_overflow);
    }

    #[test]
    #[should_panic(expected = "edge capacity must be positive")]
    fn invalid_config_rejected() {
        let _ = GlobalRouter::new(RouterConfig {
            edge_capacity: 0,
            ..RouterConfig::default()
        });
    }
}
