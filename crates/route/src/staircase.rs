//! A monotone-staircase early global router (after STAIRoute, Kar et
//! al.).
//!
//! PathFinder negotiation ([`crate::GlobalRouter`]) is the high-fidelity
//! ground truth, but it pays A* over the whole grid per net per
//! iteration. Early routability assessment wants something orders of
//! magnitude cheaper that still reacts to the *floorplan structure*:
//! STAIRoute's observation is that a placed floorplan induces a
//! hierarchy of **monotone staircase cuts** — staircase-shaped
//! bipartitions that thread the channels between blocks — and that nets
//! routed through the staircase gates of that hierarchy give a faithful
//! early congestion picture at a fraction of the cost.
//!
//! This router reproduces that scheme on the unit grid:
//!
//! 1. **Cut tree.** The chip's bins are bipartitioned recursively by
//!    monotone staircase paths (alternating falling `↘` and rising `↗`
//!    by depth). Each candidate path is found by dynamic programming
//!    over the lattice of bin corners, minimizing the number of placed
//!    modules the path slices through — so cuts follow channels.
//! 2. **Gates.** Every boundary edge of a cut that separates two bins
//!    of the region is a *gate*: a legal crossing point for nets the
//!    cut separates.
//! 3. **Routing.** A net whose terminals fall in different leaf regions
//!    crosses exactly one cut it cannot avoid — the one at the lowest
//!    common ancestor of its leaves. It picks the gate minimizing its
//!    Manhattan detour and routes terminal → gate → terminal with
//!    monotone L-walks, depositing one unit of usage per bin entered.
//!
//! The result is a per-bin usage map. Everything is integer
//! arithmetic: the map is **bit-identical** for the same
//! `(chip, modules, segments, seed)` and — because each net's route
//! depends only on the static cut tree, never on other nets — entirely
//! independent of the order nets are presented in.

use irgrid_core::analysis::Raster;
use irgrid_core::UnitGrid;
use irgrid_geom::{Point, Rect, Um};

/// Staircase router tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaircaseConfig {
    /// Bin pitch of the usage grid.
    pub pitch: Um,
    /// Tie-break seed: equal-cost staircase cuts are disambiguated by
    /// this seed, deterministically. Same placement + same seed =
    /// bit-identical usage map.
    pub seed: u64,
    /// Regions of at most this many bins become cut-tree leaves.
    pub leaf_cells: usize,
}

impl Default for StaircaseConfig {
    fn default() -> StaircaseConfig {
        StaircaseConfig {
            pitch: Um(30),
            seed: 0,
            leaf_cells: 8,
        }
    }
}

impl StaircaseConfig {
    fn validate(&self) {
        assert!(
            self.pitch > Um::ZERO,
            "pitch must be positive, got {}",
            self.pitch
        );
        assert!(self.leaf_cells > 0, "leaf size must be positive");
    }
}

/// The outcome of staircase-routing one floorplan.
#[derive(Debug, Clone)]
pub struct StaircaseResult {
    /// Per-bin crossing counts.
    pub usage: StaircaseUsage,
    /// Nets routed (same-bin nets are skipped, as in the PathFinder
    /// router).
    pub routed_nets: usize,
    /// Total bins entered over all routes — the wirelength analogue.
    pub routed_bins: u64,
    /// Internal nodes of the staircase cut tree.
    pub cut_count: usize,
    /// Leaf regions of the staircase cut tree.
    pub leaf_count: usize,
}

/// The per-bin usage map produced by the staircase router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaircaseUsage {
    grid: UnitGrid,
    counts: Vec<u64>,
}

impl StaircaseUsage {
    /// The underlying bin grid.
    #[must_use]
    pub fn grid(&self) -> &UnitGrid {
        &self.grid
    }

    /// Raw per-bin crossing counts, row-major.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The maximum bin usage anywhere.
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Mean usage of the top `fraction` most used bins — comparable to
    /// [`crate::RoutingGrid::top_fraction_usage`].
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn top_fraction_usage(&self, fraction: f64) -> f64 {
        let values: Vec<f64> = self.counts.iter().map(|&u| u as f64).collect();
        irgrid_core::score::top_fraction_mean(&values, fraction)
    }

    /// The usage map as an `f64` raster for spatial comparison against
    /// model estimates.
    #[must_use]
    pub fn raster(&self) -> Raster {
        Raster::new(
            self.grid.cols() as usize,
            self.grid.rows() as usize,
            self.counts.iter().map(|&u| u as f64).collect(),
        )
    }
}

/// The monotone-staircase early global router.
///
/// See the [module docs](self) for the algorithm.
///
/// # Examples
///
/// ```
/// use irgrid_geom::{Point, Rect, Um};
/// use irgrid_route::{StaircaseConfig, StaircaseRouter};
///
/// let chip = Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300));
/// let modules = vec![
///     Rect::from_origin_size(Point::new(Um(0), Um(0)), Um(150), Um(300)),
///     Rect::from_origin_size(Point::new(Um(150), Um(0)), Um(150), Um(300)),
/// ];
/// let segments = vec![(Point::new(Um(15), Um(15)), Point::new(Um(285), Um(285)))];
/// let router = StaircaseRouter::new(StaircaseConfig::default());
/// let result = router.route(&chip, &modules, &segments);
/// assert_eq!(result.routed_nets, 1);
/// assert!(result.routed_bins >= 19, "a 10x10 bin diagonal takes 19 bins");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StaircaseRouter {
    config: StaircaseConfig,
}

/// A bin coordinate (column, row).
type Bin = (i64, i64);

impl StaircaseRouter {
    /// Creates a router.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`StaircaseConfig`]
    /// fields).
    #[must_use]
    pub fn new(config: StaircaseConfig) -> StaircaseRouter {
        config.validate();
        StaircaseRouter { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &StaircaseConfig {
        &self.config
    }

    /// Routes all 2-pin segments over the placed `modules`.
    ///
    /// `modules` are the placed block rectangles (the staircase cuts
    /// avoid slicing them); `segments` the MST-decomposed 2-pin nets.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is degenerate or not at the origin.
    #[must_use]
    pub fn route(
        &self,
        chip: &Rect,
        modules: &[Rect],
        segments: &[(Point, Point)],
    ) -> StaircaseResult {
        let grid = UnitGrid::new(chip, self.config.pitch);
        let tree = CutTree::build(&grid, modules, self.config.seed, self.config.leaf_cells);

        let mut counts = vec![0u64; grid.cell_count()];
        let cols = grid.cols();
        let mut routed_nets = 0usize;
        let mut routed_bins = 0u64;
        for &(a, b) in segments {
            let ca = grid.cell_of(a);
            let cb = grid.cell_of(b);
            if ca == cb {
                continue;
            }
            routed_nets += 1;
            let via = tree.crossing(&grid, a, b);
            let mut deposit = |bin: Bin| {
                counts[(bin.1 * cols + bin.0) as usize] += 1;
                routed_bins += 1;
            };
            match via {
                Some(gate) => {
                    let cg = grid.cell_of(gate);
                    walk_l(ca, cg, true, &mut deposit);
                    if cg != cb {
                        walk_l_skip_first(cg, cb, &mut deposit);
                    }
                }
                None => walk_l(ca, cb, true, &mut deposit),
            }
        }

        StaircaseResult {
            usage: StaircaseUsage { grid, counts },
            routed_nets,
            routed_bins,
            cut_count: tree.cut_count,
            leaf_count: tree.leaf_count,
        }
    }
}

/// Walks the monotone L-path (x-first, then y) from `a` to `b`,
/// calling `deposit` for every bin entered; `include_start` controls
/// whether `a` itself is deposited.
fn walk_l(a: Bin, b: Bin, include_start: bool, deposit: &mut impl FnMut(Bin)) {
    if include_start {
        deposit(a);
    }
    let step_x = (b.0 - a.0).signum();
    let mut x = a.0;
    while x != b.0 {
        x += step_x;
        deposit((x, a.1));
    }
    let step_y = (b.1 - a.1).signum();
    let mut y = a.1;
    while y != b.1 {
        y += step_y;
        deposit((b.0, y));
    }
}

/// [`walk_l`] without re-depositing the junction bin.
fn walk_l_skip_first(a: Bin, b: Bin, deposit: &mut impl FnMut(Bin)) {
    walk_l(a, b, false, deposit);
}

/// The recursive monotone-staircase bipartition of the bin grid.
#[derive(Debug)]
struct CutTree {
    nodes: Vec<Node>,
    /// Leaf node id of every bin, row-major.
    leaf_of: Vec<u32>,
    cut_count: usize,
    leaf_count: usize,
}

#[derive(Debug)]
struct Node {
    parent: Option<u32>,
    depth: u32,
    /// Gate midpoints of this node's cut, in path order. Empty for
    /// leaves.
    gates: Vec<Point>,
}

/// Module-slicing costs of every bin-boundary edge.
#[derive(Debug)]
struct CutCosts {
    cols: i64,
    rows: i64,
    /// `h[y * cols + x]`: modules sliced by the horizontal boundary
    /// segment at lattice line `y` (0..=rows) over column `x`.
    h: Vec<u32>,
    /// `v[x * rows + y]`: modules sliced by the vertical boundary
    /// segment at lattice line `x` (0..=cols) over row `y`.
    v: Vec<u32>,
}

impl CutCosts {
    fn build(grid: &UnitGrid, modules: &[Rect]) -> CutCosts {
        let (cols, rows) = (grid.cols(), grid.rows());
        let p = grid.pitch().0;
        let mut h = vec![0u32; ((rows + 1) * cols) as usize];
        let mut v = vec![0u32; ((cols + 1) * rows) as usize];
        for m in modules {
            // Columns the module's interior overlaps.
            let x_lo = (m.ll().x.0.div_euclid(p)).max(0);
            let x_hi = ((m.ur().x.0 + p - 1).div_euclid(p)).min(cols);
            // Horizontal lattice lines strictly inside the module.
            let y_line_lo = (m.ll().y.0.div_euclid(p) + 1).max(0);
            let y_line_hi = ((m.ur().y.0 - 1).div_euclid(p)).min(rows);
            for y in y_line_lo..=y_line_hi {
                for x in x_lo..x_hi.min(cols) {
                    h[(y * cols + x) as usize] += 1;
                }
            }
            // Rows the module's interior overlaps.
            let y_lo = (m.ll().y.0.div_euclid(p)).max(0);
            let y_hi = ((m.ur().y.0 + p - 1).div_euclid(p)).min(rows);
            // Vertical lattice lines strictly inside the module.
            let x_line_lo = (m.ll().x.0.div_euclid(p) + 1).max(0);
            let x_line_hi = ((m.ur().x.0 - 1).div_euclid(p)).min(cols);
            for x in x_line_lo..=x_line_hi {
                for y in y_lo..y_hi.min(rows) {
                    v[(x * rows + y) as usize] += 1;
                }
            }
        }
        CutCosts { cols, rows, h, v }
    }

    fn h_cost(&self, x: i64, y: i64) -> u64 {
        debug_assert!(x >= 0 && x < self.cols && y >= 0 && y <= self.rows);
        u64::from(self.h[(y * self.cols + x) as usize])
    }

    fn v_cost(&self, x: i64, y: i64) -> u64 {
        debug_assert!(x >= 0 && x <= self.cols && y >= 0 && y < self.rows);
        u64::from(self.v[(x * self.rows + y) as usize])
    }
}

/// SplitMix64: the deterministic tie-break bit source.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CutTree {
    fn build(grid: &UnitGrid, modules: &[Rect], seed: u64, leaf_cells: usize) -> CutTree {
        let costs = CutCosts::build(grid, modules);
        let cols = grid.cols();
        let mut nodes = vec![Node {
            parent: None,
            depth: 0,
            gates: Vec::new(),
        }];
        let mut leaf_of = vec![0u32; grid.cell_count()];
        let all_bins: Vec<Bin> = (0..grid.rows())
            .flat_map(|y| (0..cols).map(move |x| (x, y)))
            .collect();
        let mut cut_count = 0usize;
        let mut leaf_count = 0usize;

        let mut stack: Vec<(Vec<Bin>, u32)> = vec![(all_bins, 0)];
        while let Some((bins, node_id)) = stack.pop() {
            let depth = nodes[node_id as usize].depth;
            let split = if bins.len() <= leaf_cells {
                None
            } else {
                split_region(
                    &bins,
                    &costs,
                    grid.pitch().0,
                    depth % 2 == 0,
                    splitmix64(seed ^ u64::from(node_id)),
                )
            };
            match split {
                Some((upper, lower, gates)) => {
                    cut_count += 1;
                    nodes[node_id as usize].gates = gates;
                    let upper_id = nodes.len() as u32;
                    nodes.push(Node {
                        parent: Some(node_id),
                        depth: depth + 1,
                        gates: Vec::new(),
                    });
                    let lower_id = nodes.len() as u32;
                    nodes.push(Node {
                        parent: Some(node_id),
                        depth: depth + 1,
                        gates: Vec::new(),
                    });
                    stack.push((upper, upper_id));
                    stack.push((lower, lower_id));
                }
                None => {
                    leaf_count += 1;
                    for &(x, y) in &bins {
                        leaf_of[(y * cols + x) as usize] = node_id;
                    }
                }
            }
        }

        CutTree {
            nodes,
            leaf_of,
            cut_count,
            leaf_count,
        }
    }

    /// The gate the net `a`–`b` must cross, if its terminals fall in
    /// different leaf regions: the detour-minimizing gate of the cut at
    /// the lowest common ancestor of the two leaves.
    fn crossing(&self, grid: &UnitGrid, a: Point, b: Point) -> Option<Point> {
        let (ax, ay) = grid.cell_of(a);
        let (bx, by) = grid.cell_of(b);
        let la = self.leaf_of[(ay * grid.cols() + ax) as usize];
        let lb = self.leaf_of[(by * grid.cols() + bx) as usize];
        if la == lb {
            return None;
        }
        let lca = self.lca(la, lb);
        let gates = &self.nodes[lca as usize].gates;
        let mut best: Option<(Um, Point)> = None;
        for &g in gates {
            let detour = a.manhattan_distance(g) + g.manhattan_distance(b);
            // Strict `<` keeps the first (path-order) gate on ties.
            if best.map_or(true, |(d, _)| detour < d) {
                best = Some((detour, g));
            }
        }
        best.map(|(_, g)| g)
    }

    fn lca(&self, mut a: u32, mut b: u32) -> u32 {
        while self.nodes[a as usize].depth > self.nodes[b as usize].depth {
            a = self.nodes[a as usize].parent.unwrap_or(a);
        }
        while self.nodes[b as usize].depth > self.nodes[a as usize].depth {
            b = self.nodes[b as usize].parent.unwrap_or(b);
        }
        while a != b {
            match (self.nodes[a as usize].parent, self.nodes[b as usize].parent) {
                (Some(pa), Some(pb)) => {
                    a = pa;
                    b = pb;
                }
                // Unreachable on a well-formed tree: both chains reach
                // the root together.
                _ => return 0,
            }
        }
        a
    }
}

/// Bipartitions `bins` along the cheapest monotone staircase through
/// their bounding box. Returns `(upper, lower, gates)`, or `None` when
/// the cheapest staircase leaves one side empty (the region is not
/// usefully divisible).
///
/// `falling` selects a `↘` staircase (top-left to bottom-right);
/// otherwise `↗` (bottom-left to top-right). `tie_seed` disambiguates
/// equal-cost paths deterministically.
#[allow(clippy::type_complexity)]
fn split_region(
    bins: &[Bin],
    costs: &CutCosts,
    pitch: i64,
    falling: bool,
    tie_seed: u64,
) -> Option<(Vec<Bin>, Vec<Bin>, Vec<Point>)> {
    let bx0 = bins.iter().map(|&(x, _)| x).min()?;
    let bx1 = bins.iter().map(|&(x, _)| x).max()?;
    let by0 = bins.iter().map(|&(_, y)| y).min()?;
    let by1 = bins.iter().map(|&(_, y)| y).max()?;
    let w = (bx1 - bx0 + 1) as usize;
    let h = (by1 - by0 + 1) as usize;

    // Membership mask of the (possibly staircase-shaped) region.
    let mut member = vec![false; w * h];
    for &(x, y) in bins {
        member[((y - by0) as usize) * w + (x - bx0) as usize] = true;
    }
    let in_region = |x: i64, y: i64| -> bool {
        x >= bx0
            && x <= bx1
            && y >= by0
            && y <= by1
            && member[((y - by0) as usize) * w + (x - bx0) as usize]
    };

    // Backward DP over lattice corners: dist-to-end of the cheapest
    // monotone path. Corners are local `(xi, yi)`, `0..=w` × `0..=h`.
    // Falling: start (0, h), end (w, 0), moves right/down.
    // Rising: start (0, 0), end (w, h), moves right/up.
    //
    // The cost is lexicographic, packed into one `u64`: the primary
    // term counts modules sliced; the secondary term pulls horizontal
    // runs toward the region's middle row and vertical runs toward its
    // middle column, so that among equally module-free paths the
    // *balanced* staircase wins and degenerate boundary-hugging cuts
    // (which would leave one side empty) lose — even when modules span
    // the region and force every column crossing to an extreme height.
    let big = 2 * (w as u64) * (h as u64) + 1;
    let idx = |xi: usize, yi: usize| yi * (w + 1) + xi;
    let mut dte = vec![u64::MAX; (w + 1) * (h + 1)];
    let h_cost = |xi: usize, yi: usize| {
        let imbalance = (h as i64 - 2 * yi as i64).unsigned_abs();
        costs.h_cost(bx0 + xi as i64, by0 + yi as i64) * big + imbalance
    };
    let v_cost = |xi: usize, row: usize| {
        let imbalance = (w as i64 - 2 * xi as i64).unsigned_abs();
        costs.v_cost(bx0 + xi as i64, by0 + row as i64) * big + imbalance
    };
    let end_yi = if falling { 0 } else { h };
    dte[idx(w, end_yi)] = 0;
    for xi in (0..=w).rev() {
        let yi_order: Vec<usize> = if falling {
            (0..=h).collect()
        } else {
            (0..=h).rev().collect()
        };
        for yi in yi_order {
            let mut best = dte[idx(xi, yi)];
            if xi < w {
                let c = dte[idx(xi + 1, yi)];
                if c != u64::MAX {
                    best = best.min(c + h_cost(xi, yi));
                }
            }
            if falling && yi > 0 {
                let c = dte[idx(xi, yi - 1)];
                if c != u64::MAX {
                    best = best.min(c + v_cost(xi, yi - 1));
                }
            }
            if !falling && yi < h {
                let c = dte[idx(xi, yi + 1)];
                if c != u64::MAX {
                    best = best.min(c + v_cost(xi, yi));
                }
            }
            dte[idx(xi, yi)] = best;
        }
    }

    // Forward walk from the start corner along moves that stay on a
    // cheapest path; residual ties fall to the seeded bit.
    let (mut xi, mut yi) = (0usize, if falling { h } else { 0 });
    let mut y_cut = vec![0i64; w];
    let mut gates = Vec::new();
    let mut step = 0u64;
    while xi < w || yi != end_yi {
        let right_cost = if xi < w {
            let c = dte[idx(xi + 1, yi)];
            (c != u64::MAX).then(|| c + h_cost(xi, yi))
        } else {
            None
        };
        let vert_target = if falling {
            (yi > 0).then(|| yi - 1)
        } else {
            (yi < h).then(|| yi + 1)
        };
        let vert_cost = vert_target.and_then(|nyi| {
            let c = dte[idx(xi, nyi)];
            let row = if falling { yi - 1 } else { yi };
            (c != u64::MAX).then(|| c + v_cost(xi, row))
        });
        let here = dte[idx(xi, yi)];
        let go_right = match (right_cost, vert_cost) {
            (Some(r), Some(v)) if r == here && v == here => splitmix64(tie_seed ^ step) & 1 == 0,
            (Some(r), _) if r == here => true,
            (_, Some(v)) if v == here => false,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            // Both blocked: impossible, the end corner is reachable.
            _ => return None,
        };
        step += 1;
        if go_right {
            // Right move along lattice line yi over column xi.
            let x = bx0 + xi as i64;
            let y = by0 + yi as i64;
            y_cut[xi] = y;
            if in_region(x, y) && in_region(x, y - 1) {
                gates.push(gate_point(pitch, x, y, true));
            }
            xi += 1;
        } else {
            let x = bx0 + xi as i64;
            let row = if falling { yi - 1 } else { yi };
            let y_row = by0 + row as i64;
            if in_region(x - 1, y_row) && in_region(x, y_row) {
                gates.push(gate_point(pitch, x, y_row, false));
            }
            yi = if falling { yi - 1 } else { yi + 1 };
        }
    }

    let mut upper = Vec::with_capacity(bins.len());
    let mut lower = Vec::with_capacity(bins.len());
    for &(x, y) in bins {
        if y >= y_cut[(x - bx0) as usize] {
            upper.push((x, y));
        } else {
            lower.push((x, y));
        }
    }
    if upper.is_empty() || lower.is_empty() || gates.is_empty() {
        return None;
    }
    Some((upper, lower, gates))
}

/// The µm midpoint of a gate edge. `horizontal` gates sit on lattice
/// line `y` spanning column `x`; vertical gates on lattice line `x`
/// spanning row `y`.
fn gate_point(pitch: i64, x: i64, y: i64, horizontal: bool) -> Point {
    if horizontal {
        Point::new(Um(pitch * x + pitch / 2), Um(pitch * y))
    } else {
        Point::new(Um(pitch * x), Um(pitch * y + pitch / 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: i64, y: i64) -> Point {
        Point::new(Um(x), Um(y))
    }

    fn chip() -> Rect {
        Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300))
    }

    /// Two full-height modules separated by a 20 µm channel at x = 150.
    fn channel_modules() -> Vec<Rect> {
        vec![
            Rect::from_origin_size(pt(0, 0), Um(140), Um(300)),
            Rect::from_origin_size(pt(160, 0), Um(140), Um(300)),
        ]
    }

    fn cross_channel_segments() -> Vec<(Point, Point)> {
        vec![
            (pt(15, 45), pt(285, 45)),
            (pt(15, 255), pt(285, 105)),
            (pt(45, 135), pt(255, 165)),
        ]
    }

    #[test]
    fn usage_is_bit_identical_across_runs() {
        let router = StaircaseRouter::new(StaircaseConfig::default());
        let a = router.route(&chip(), &channel_modules(), &cross_channel_segments());
        let b = router.route(&chip(), &channel_modules(), &cross_channel_segments());
        assert_eq!(a.usage.counts(), b.usage.counts());
        assert_eq!(a.routed_bins, b.routed_bins);
    }

    #[test]
    fn usage_is_independent_of_net_order() {
        let router = StaircaseRouter::new(StaircaseConfig::default());
        let forward = cross_channel_segments();
        let mut reversed = forward.clone();
        reversed.reverse();
        let a = router.route(&chip(), &channel_modules(), &forward);
        let b = router.route(&chip(), &channel_modules(), &reversed);
        assert_eq!(a.usage.counts(), b.usage.counts());
    }

    #[test]
    fn total_usage_equals_routed_bins() {
        let router = StaircaseRouter::new(StaircaseConfig::default());
        let result = router.route(&chip(), &channel_modules(), &cross_channel_segments());
        let total: u64 = result.usage.counts().iter().sum();
        assert_eq!(total, result.routed_bins);
        assert_eq!(result.routed_nets, 3);
    }

    #[test]
    fn cut_tree_is_a_proper_binary_tree() {
        let router = StaircaseRouter::new(StaircaseConfig::default());
        let result = router.route(&chip(), &channel_modules(), &cross_channel_segments());
        assert!(result.leaf_count >= 2, "a 10x10 grid must split");
        assert_eq!(
            result.cut_count + 1,
            result.leaf_count,
            "every cut adds exactly one region"
        );
    }

    #[test]
    fn root_cut_threads_the_module_channel() {
        // The only module-free vertical line is x = 150; a balanced
        // zero-slice cut must cross it, so nets spanning the channel
        // deposit usage in the channel columns (bins 4 and 5).
        let router = StaircaseRouter::new(StaircaseConfig::default());
        let result = router.route(&chip(), &channel_modules(), &cross_channel_segments());
        let grid = result.usage.grid();
        let channel_usage: u64 = (0..grid.rows())
            .map(|y| {
                result.usage.counts()[(y * grid.cols() + 4) as usize]
                    + result.usage.counts()[(y * grid.cols() + 5) as usize]
            })
            .sum();
        assert!(channel_usage > 0);
    }

    #[test]
    fn same_bin_nets_are_skipped() {
        let router = StaircaseRouter::new(StaircaseConfig::default());
        let result = router.route(&chip(), &[], &[(pt(15, 15), pt(20, 20))]);
        assert_eq!(result.routed_nets, 0);
        assert_eq!(result.routed_bins, 0);
        assert_eq!(result.usage.peak(), 0);
    }

    #[test]
    fn raster_matches_counts() {
        let router = StaircaseRouter::new(StaircaseConfig::default());
        let result = router.route(&chip(), &channel_modules(), &cross_channel_segments());
        let raster = result.usage.raster();
        for (i, &count) in result.usage.counts().iter().enumerate() {
            assert!((raster.values()[i] - count as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn single_bin_chip_routes_nothing() {
        let tiny = Rect::from_origin_size(Point::ORIGIN, Um(20), Um(20));
        let router = StaircaseRouter::new(StaircaseConfig::default());
        let result = router.route(&tiny, &[], &[(pt(5, 5), pt(15, 15))]);
        assert_eq!(result.routed_nets, 0);
        assert_eq!(result.leaf_count, 1);
    }
}
