//! The capacitated routing grid.

use irgrid_core::UnitGrid;
use irgrid_geom::{Point, Rect, Um};

/// Usage and capacity of one routing-grid edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeUsage {
    /// Nets currently crossing the edge.
    pub usage: u32,
    /// Track capacity of the edge.
    pub capacity: u32,
}

impl EdgeUsage {
    /// How far usage exceeds capacity (0 when within capacity).
    #[must_use]
    pub fn overflow(&self) -> u32 {
        self.usage.saturating_sub(self.capacity)
    }
}

/// A routing grid over the chip: cells of side `pitch` with capacitated
/// boundaries between 4-adjacent cells.
///
/// Horizontal edges connect `(x, y) – (x+1, y)`; vertical edges connect
/// `(x, y) – (x, y+1)`.
#[derive(Debug, Clone)]
pub struct RoutingGrid {
    grid: UnitGrid,
    capacity: u32,
    /// `cols-1 × rows` horizontal edge usages, row-major.
    h_usage: Vec<u32>,
    /// `cols × rows-1` vertical edge usages, row-major.
    v_usage: Vec<u32>,
    /// Negotiation history per edge (same layouts).
    h_history: Vec<f64>,
    v_history: Vec<f64>,
}

impl RoutingGrid {
    /// Builds an empty grid over `chip` with uniform edge capacity.
    ///
    /// # Panics
    ///
    /// Panics if the pitch is not positive, the capacity is zero, or the
    /// chip is degenerate / off-origin.
    #[must_use]
    pub fn new(chip: &Rect, pitch: Um, capacity: u32) -> RoutingGrid {
        assert!(capacity > 0, "edge capacity must be positive");
        let grid = UnitGrid::new(chip, pitch);
        let (c, r) = (grid.cols() as usize, grid.rows() as usize);
        RoutingGrid {
            grid,
            capacity,
            h_usage: vec![0; c.saturating_sub(1) * r],
            v_usage: vec![0; c * r.saturating_sub(1)],
            h_history: vec![0.0; c.saturating_sub(1) * r],
            v_history: vec![0.0; c * r.saturating_sub(1)],
        }
    }

    /// The underlying unit grid.
    #[must_use]
    pub fn grid(&self) -> &UnitGrid {
        &self.grid
    }

    /// Uniform edge capacity.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The cell containing a point (clamped to the grid).
    #[must_use]
    pub fn cell_of(&self, p: Point) -> (i64, i64) {
        self.grid.cell_of(p)
    }

    fn h_index(&self, x: i64, y: i64) -> usize {
        debug_assert!(x >= 0 && x < self.grid.cols() - 1 && y >= 0 && y < self.grid.rows());
        (y * (self.grid.cols() - 1) + x) as usize
    }

    fn v_index(&self, x: i64, y: i64) -> usize {
        debug_assert!(x >= 0 && x < self.grid.cols() && y >= 0 && y < self.grid.rows() - 1);
        (y * self.grid.cols() + x) as usize
    }

    /// Usage of the horizontal edge `(x, y) – (x+1, y)`.
    #[must_use]
    pub fn h_edge(&self, x: i64, y: i64) -> EdgeUsage {
        EdgeUsage {
            usage: self.h_usage[self.h_index(x, y)],
            capacity: self.capacity,
        }
    }

    /// Usage of the vertical edge `(x, y) – (x, y+1)`.
    #[must_use]
    pub fn v_edge(&self, x: i64, y: i64) -> EdgeUsage {
        EdgeUsage {
            usage: self.v_usage[self.v_index(x, y)],
            capacity: self.capacity,
        }
    }

    pub(crate) fn h_history(&self, x: i64, y: i64) -> f64 {
        self.h_history[self.h_index(x, y)]
    }

    pub(crate) fn v_history(&self, x: i64, y: i64) -> f64 {
        self.v_history[self.v_index(x, y)]
    }

    pub(crate) fn add_h(&mut self, x: i64, y: i64, delta: i32) {
        let i = self.h_index(x, y);
        self.h_usage[i] = self.h_usage[i]
            .checked_add_signed(delta)
            // irgrid-lint: allow(P1): underflow is a router accounting bug; saturating would silently corrupt history costs
            .expect("usage underflow");
    }

    pub(crate) fn add_v(&mut self, x: i64, y: i64, delta: i32) {
        let i = self.v_index(x, y);
        self.v_usage[i] = self.v_usage[i]
            .checked_add_signed(delta)
            // irgrid-lint: allow(P1): underflow is a router accounting bug; saturating would silently corrupt history costs
            .expect("usage underflow");
    }

    /// Raises negotiation history on every currently overflowing edge.
    pub(crate) fn bump_history(&mut self, increment: f64) {
        for (u, h) in self.h_usage.iter().zip(self.h_history.iter_mut()) {
            if *u > self.capacity {
                *h += increment * f64::from(*u - self.capacity);
            }
        }
        for (u, h) in self.v_usage.iter().zip(self.v_history.iter_mut()) {
            if *u > self.capacity {
                *h += increment * f64::from(*u - self.capacity);
            }
        }
    }

    /// Total overflow over all edges.
    #[must_use]
    pub fn total_overflow(&self) -> u64 {
        let h: u64 = self
            .h_usage
            .iter()
            .map(|&u| u64::from(u.saturating_sub(self.capacity)))
            .sum();
        let v: u64 = self
            .v_usage
            .iter()
            .map(|&u| u64::from(u.saturating_sub(self.capacity)))
            .sum();
        h + v
    }

    /// Number of edges whose usage exceeds capacity.
    #[must_use]
    pub fn overflowed_edges(&self) -> usize {
        self.h_usage
            .iter()
            .chain(self.v_usage.iter())
            .filter(|&&u| u > self.capacity)
            .count()
    }

    /// The maximum edge usage anywhere.
    #[must_use]
    pub fn peak_usage(&self) -> u32 {
        self.h_usage
            .iter()
            .chain(self.v_usage.iter())
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// The routed usage as a per-cell raster: each edge's usage is
    /// credited to both cells it connects, so a cell's value is the
    /// total routing demand through its four walls. This is the
    /// router-side map that congestion-model rasters (built at the same
    /// pitch) are compared against — absolute scale differs from the
    /// models' units, which is why the comparison metrics are
    /// scale-free.
    #[must_use]
    pub fn cell_usage_raster(&self) -> irgrid_core::analysis::Raster {
        let (cols, rows) = (self.grid.cols(), self.grid.rows());
        let mut values = vec![0.0f64; (cols * rows) as usize];
        for y in 0..rows {
            for x in 0..cols - 1 {
                let u = f64::from(self.h_usage[self.h_index(x, y)]);
                values[(y * cols + x) as usize] += u;
                values[(y * cols + x + 1) as usize] += u;
            }
        }
        for y in 0..rows - 1 {
            for x in 0..cols {
                let u = f64::from(self.v_usage[self.v_index(x, y)]);
                values[(y * cols + x) as usize] += u;
                values[((y + 1) * cols + x) as usize] += u;
            }
        }
        irgrid_core::analysis::Raster::new(cols as usize, rows as usize, values)
    }

    /// Mean usage of the top `fraction` most used edges — the router-side
    /// analogue of the paper's top-10 % congestion score, used to
    /// correlate estimates with routed reality.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn top_fraction_usage(&self, fraction: f64) -> f64 {
        let values: Vec<f64> = self
            .h_usage
            .iter()
            .chain(self.v_usage.iter())
            .map(|&u| f64::from(u))
            .collect();
        irgrid_core::score::top_fraction_mean(&values, fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> RoutingGrid {
        let chip = Rect::from_origin_size(Point::ORIGIN, Um(120), Um(90));
        RoutingGrid::new(&chip, Um(30), 2)
    }

    #[test]
    fn dimensions() {
        let g = grid();
        assert_eq!(g.grid().cols(), 4);
        assert_eq!(g.grid().rows(), 3);
        assert_eq!(g.capacity(), 2);
        assert_eq!(g.total_overflow(), 0);
        assert_eq!(g.peak_usage(), 0);
    }

    #[test]
    fn usage_accounting() {
        let mut g = grid();
        g.add_h(0, 0, 1);
        g.add_h(0, 0, 1);
        g.add_h(0, 0, 1);
        assert_eq!(g.h_edge(0, 0).usage, 3);
        assert_eq!(g.h_edge(0, 0).overflow(), 1);
        assert_eq!(g.total_overflow(), 1);
        assert_eq!(g.overflowed_edges(), 1);
        g.add_h(0, 0, -1);
        assert_eq!(g.total_overflow(), 0);
    }

    #[test]
    fn vertical_edges_independent() {
        let mut g = grid();
        g.add_v(3, 1, 1);
        assert_eq!(g.v_edge(3, 1).usage, 1);
        assert_eq!(g.h_edge(0, 0).usage, 0);
        assert_eq!(g.peak_usage(), 1);
    }

    #[test]
    fn history_bumps_only_overflowing() {
        let mut g = grid();
        g.add_h(1, 1, 3); // capacity 2 -> overflow 1
        g.add_v(0, 0, 1); // within capacity
        g.bump_history(0.5);
        assert!(g.h_history(1, 1) > 0.0);
        assert_eq!(g.v_history(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let chip = Rect::from_origin_size(Point::ORIGIN, Um(120), Um(90));
        let _ = RoutingGrid::new(&chip, Um(30), 0);
    }

    #[test]
    fn top_fraction_usage_tracks_hot_edges() {
        let mut g = grid();
        g.add_h(0, 0, 5);
        let hot = g.top_fraction_usage(0.05);
        let broad = g.top_fraction_usage(1.0);
        assert!(hot >= broad);
        assert!(hot > 0.0);
    }
}
