//! A capacitated grid global router.
//!
//! The paper validates its congestion *estimates* against a finer
//! estimator (the 10 µm "judging model"). The natural stronger check —
//! and the obvious reviewer question — is validation against an actual
//! router: congestion estimates exist to predict where a router will
//! overflow. This crate provides that ground truth: a deterministic
//! global router over a capacitated routing grid with PathFinder-style
//! negotiated congestion (route, measure overflow, raise history costs,
//! rip-up and reroute).
//!
//! The router is deliberately simple — sequential A* with negotiation,
//! uniform edge capacities — but it is a *real* router: nets may detour
//! off their bounding boxes, which is exactly the behaviour probabilistic
//! models cannot capture and the reason validation matters.
//!
//! A second, much cheaper substrate lives in [`staircase`]: a monotone
//! staircase early global router in the STAIRoute tradition, which
//! routes every net through the gates of a module-avoiding staircase
//! cut tree in a single deterministic pass. It trades negotiation
//! fidelity for orders-of-magnitude speed, and its usage map is
//! bit-identical across runs and independent of net order — useful as
//! a fast second opinion when PathFinder is too slow.
//!
//! # Examples
//!
//! ```
//! use irgrid_geom::{Point, Rect, Um};
//! use irgrid_route::{GlobalRouter, RouterConfig};
//!
//! let chip = Rect::from_origin_size(Point::ORIGIN, Um(300), Um(300));
//! let segments = vec![
//!     (Point::new(Um(15), Um(15)), Point::new(Um(285), Um(285))),
//!     (Point::new(Um(15), Um(285)), Point::new(Um(285), Um(15))),
//! ];
//! let router = GlobalRouter::new(RouterConfig {
//!     pitch: Um(30),
//!     edge_capacity: 4,
//!     ..RouterConfig::default()
//! });
//! let result = router.route(&chip, &segments);
//! assert_eq!(result.routed_nets, 2);
//! assert_eq!(result.total_overflow, 0, "two nets cannot overflow capacity 4");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod router;
pub mod staircase;

pub use grid::{EdgeUsage, RoutingGrid};
pub use router::{GlobalRouter, RouteResult, RouterConfig};
pub use staircase::{StaircaseConfig, StaircaseResult, StaircaseRouter, StaircaseUsage};
