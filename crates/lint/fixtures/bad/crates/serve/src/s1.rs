//! S1 fixture: raw filesystem writes on state paths outside the blessed
//! atomic writer modules.

use std::fs;
use std::io::Write;
use std::path::Path;

pub fn save_session(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    fs::write(path, bytes)
}

pub fn save_manifest(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = fs::File::create(path)?;
    file.write_all(bytes)
}

pub fn swap_in(tmp: &Path, path: &Path) -> std::io::Result<()> {
    fs::rename(tmp, path)
}

pub fn append_log(path: &Path) -> std::io::Result<fs::File> {
    fs::OpenOptions::new().append(true).open(path)
}
