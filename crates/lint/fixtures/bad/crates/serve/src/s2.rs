//! S2 fixture: chaos consult sites the registry cannot vouch for.

pub struct Injector;

impl Injector {
    pub fn consult(&self, _site: &str, _key: &str, _index: u64) -> bool {
        false
    }
}

/// Typo'd site: the fixture registry spells it `persist.session`.
pub fn write_with_typo(chaos: &Injector) -> bool {
    chaos.consult("persist.sessoin", "alice", 0)
}

/// Non-literal site outside the injector plumbing.
pub fn dynamic_site(chaos: &Injector, site: &str) -> bool {
    chaos.consult(site, "alice", 1)
}
