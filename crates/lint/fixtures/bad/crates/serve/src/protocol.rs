//! S3 fixture: protocol enums missing their structured annotations.

/// Errors the fixture daemon reports.
pub enum ErrorKind {
    /// The daemon is overloaded; no classification given.
    Backpressure,
    /// Annotated, but with a word outside the vocabulary. [retry: perhaps]
    Timeout,
}

/// Requests the fixture daemon accepts.
pub enum RequestOp {
    /// No idempotency note at all.
    Evaluate,
    /// Properly noted. [idempotency: read-only]
    Stat,
}
