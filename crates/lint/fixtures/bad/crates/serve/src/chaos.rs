//! S2 fixture registry: misses the consulted site and carries a dead one.

/// The central site table for the bad corpus.
pub const REGISTERED_SITES: &[&str] = &[
    "persist.session",   // never consulted anywhere in this corpus
    "registry.dead-site", // never consulted anywhere in this corpus
];
