//! S5 fixture: a suppression that outlived its finding.

use std::collections::BTreeMap;

// irgrid-lint: allow(D1): the map below used to be a HashMap
pub fn total(map: &BTreeMap<u32, u64>) -> u64 {
    map.values().sum::<u64>()
}
