//! D1 fixture: wall-clock and hash-order iteration in a cost crate.

use std::collections::HashMap;
use std::time::Instant;

pub fn stale_weight(map: &HashMap<u32, u64>) -> u64 {
    let started = Instant::now();
    let mut total = 0;
    for (_, weight) in map.iter() {
        total += weight;
    }
    total + started.elapsed().as_secs()
}
