//! U1 fixture: a library crate root missing `#![forbid(unsafe_code)]`.

pub fn placeholder() {}
