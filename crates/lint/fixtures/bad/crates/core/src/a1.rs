//! A1 fixture: a suppression directive without a reason neither parses
//! nor suppresses — both the malformed directive and the underlying
//! finding are reported.

pub fn unjustified(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() // irgrid-lint: allow(D2)
}
