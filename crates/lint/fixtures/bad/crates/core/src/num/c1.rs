//! C1 fixture: unaudited numeric `as` casts in a precision-audited path.

pub fn widen(n: u64, k: usize) -> f64 {
    n as f64 + k as f64
}

pub fn narrow(x: f64) -> i64 {
    x as i64
}
