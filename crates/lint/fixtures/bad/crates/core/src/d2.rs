//! D2 fixture: order-sensitive float accumulation in a cost crate.

pub fn mass(values: &[f64]) -> f64 {
    values.iter().sum::<f64>()
}

pub fn mean(values: &[f64]) -> f64 {
    let total: f64 = values.iter().copied().sum();
    total / values.len() as f64
}

pub fn weighted(values: &[(f64, f64)]) -> f64 {
    values.iter().fold(0.0, |acc, &(d, a)| acc + d * a)
}

pub fn ambiguous(values: &[u64]) -> u64 {
    values.iter().sum()
}
