//! S4 fixture: float equality and partial ordering in a cost crate.

pub fn pick(costs: &mut [f64], threshold: f64) -> bool {
    costs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let zero = costs[0] == 0.0;
    let capped = threshold != f64::INFINITY;
    zero && capped
}
