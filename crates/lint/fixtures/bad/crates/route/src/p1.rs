//! P1 fixture: panicking constructs in non-test library code. The
//! trailing indexing line only fires under `--strict-indexing`.

pub fn span(v: &[u64]) -> u64 {
    let head = v.first().unwrap();
    let tail = v.last().expect("non-empty");
    if head > tail {
        panic!("unsorted input");
    }
    v[v.len() - 1] - v[0]
}

pub fn later() -> u64 {
    todo!("not yet")
}

pub fn never() -> u64 {
    unimplemented!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = [1u64];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
