//! P1 fixture (good): fallible paths return `Option`/`Result`; the one
//! retained `expect` justifies its invariant with an allow.

pub fn span(v: &[u64]) -> Option<u64> {
    let head = v.first()?;
    let tail = v.last()?;
    tail.checked_sub(*head)
}

pub fn hub(weights: &[u64]) -> usize {
    weights
        .iter()
        .enumerate()
        .min_by_key(|&(i, w)| (*w, i))
        .map(|(i, _)| i)
        // irgrid-lint: allow(P1): callers guarantee at least one weight
        .expect("non-empty weight list")
}
