//! S5 fixture (good): a live suppression earning its keep.

// irgrid-lint: allow(D1): fixture demonstrates a live suppression; iteration order never observed
pub type ScratchMap = std::collections::HashMap<u32, u64>;
