//! D2 fixture (good): integral reductions declare their element type;
//! the audited float sum carries an allow naming why its order is fixed.

pub fn mass(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() // irgrid-lint: allow(D2): serial in-order sum over a dense slice; one fixed order
}

pub fn counted(values: &[u64]) -> u64 {
    values.iter().sum::<u64>()
}

pub fn longest(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0, f64::max) // irgrid-lint: allow(D2): max is order-independent
}
