//! C1 fixture (good): lossless conversions use `From`; the remaining
//! lossy cast documents its value range.

pub fn widen_exact(n: u32) -> f64 {
    f64::from(n)
}

pub fn widen_bounded(n: u64) -> f64 {
    n as f64 // irgrid-lint: allow(C1): n is a grid span (< 2^32), exact in f64
}
