//! S4 fixture (good): total ordering and bit-identity comparisons.

pub fn pick(costs: &mut [f64], threshold: f64) -> bool {
    costs.sort_by(|a, b| a.total_cmp(b));
    let zero = costs[0].to_bits() == 0.0f64.to_bits();
    let capped = threshold.to_bits() != f64::INFINITY.to_bits();
    zero && capped
}
