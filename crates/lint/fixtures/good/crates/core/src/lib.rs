//! U1 fixture (good): the crate root carries the unsafe gate.

#![forbid(unsafe_code)]

pub fn placeholder() {}
