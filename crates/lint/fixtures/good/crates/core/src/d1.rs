//! D1 fixture (good): deterministic containers by default; the one
//! justified wall-clock read carries an allow with a reason.

use std::collections::BTreeMap;
// irgrid-lint: allow(D1): deadline bookkeeping only; the value never reaches a cost or map
use std::time::Instant;

pub fn stable_weight(map: &BTreeMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_, weight) in map.iter() {
        total += weight;
    }
    total
}

// irgrid-lint: allow(D1): deadline bookkeeping only; the value never reaches a cost or map
pub fn deadline_passed(deadline: Instant) -> bool {
    Instant::now() >= deadline // irgrid-lint: allow(D1): gates run length only, never cost
}
