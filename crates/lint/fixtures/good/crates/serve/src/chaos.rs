//! S2 fixture registry (good): exactly the sites the corpus consults.

/// The central site table for the good corpus.
pub const REGISTERED_SITES: &[&str] = &["persist.session"];
