//! S2 fixture (good): every consult site is a literal the registry lists.

pub struct Injector;

impl Injector {
    pub fn consult(&self, _site: &str, _key: &str, _index: u64) -> bool {
        false
    }
}

pub fn write_session(chaos: &Injector) -> bool {
    chaos.consult("persist.session", "alice", 0)
}
