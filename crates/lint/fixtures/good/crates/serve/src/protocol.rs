//! S3 fixture (good): every variant carries its classification.

/// Errors the fixture daemon reports.
pub enum ErrorKind {
    /// Queue full. [retry: always — transient load]
    Backpressure,
    /// Deadline passed mid-batch. [retry: conditional — after reopening]
    Timeout,
}

/// Requests the fixture daemon accepts.
pub enum RequestOp {
    /// Score a batch. [idempotency: deduplicated by request id]
    Evaluate,
    /// Counters only. [idempotency: read-only]
    Stat,
}
