//! S1 fixture (good): durable bytes route through the blessed atomic
//! writer; test code may stage raw files freely.

use std::path::Path;

pub trait AtomicStore {
    fn persist(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;
}

pub fn save_session(store: &dyn AtomicStore, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    store.persist(path, bytes)
}

#[cfg(test)]
mod tests {
    #[test]
    fn staging_in_tests_is_exempt() {
        let dir = std::env::temp_dir();
        std::fs::write(dir.join("s1-fixture"), b"scratch").expect("test scratch write");
    }
}
