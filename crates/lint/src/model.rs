//! A lightweight token/item model over the masked scan.
//!
//! The v1 rules are pure line matchers; the v2 invariant rules need a
//! little structure: *which enum has which variants with which doc
//! annotations* (S3), and *which method calls pass which string literal
//! as their first argument* (S2). This module recovers exactly that much
//! — items and call sites — from the masked text, reading literal and
//! doc content back out of the raw source only after a position has been
//! located in the masked copy. It is still lexical (no `syn`, no new
//! dependencies): brace/angle matching instead of a grammar, with the
//! same conservative-match-plus-allow escape hatch as the rest of the
//! lint.

use crate::scan::{token_positions, Scan};

/// One `enum` item recovered from a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumItem {
    /// The enum's name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Whether the item sits inside a `#[cfg(test)]` extent.
    pub is_test: bool,
    /// The variants, in declaration order.
    pub variants: Vec<EnumVariant>,
}

/// One variant of an [`EnumItem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumVariant {
    /// The variant's name.
    pub name: String,
    /// 1-based line the variant name sits on.
    pub line: usize,
    /// The `///` doc-comment text attached immediately above the
    /// variant (and any attributes), comment markers stripped.
    pub docs: Vec<String>,
}

/// One `.method(` call site whose first argument is inspected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// 1-based line of the call.
    pub line: usize,
    /// 1-based byte column of the `.` introducing the call.
    pub col: usize,
    /// The first argument when it is a same-line plain string literal;
    /// `None` for anything else (variable, expression, next line).
    pub literal_arg: Option<String>,
    /// Whether the call sits inside a `#[cfg(test)]` extent.
    pub is_test: bool,
}

/// The item model for one scanned file.
#[derive(Debug)]
pub struct Model<'a> {
    scan: &'a Scan,
}

impl<'a> Model<'a> {
    /// Builds the model over a completed scan.
    pub fn new(scan: &'a Scan) -> Model<'a> {
        Model { scan }
    }

    /// Every `enum` item in the file (test and non-test; the caller
    /// filters on [`EnumItem::is_test`] as its rule requires).
    pub fn enums(&self) -> Vec<EnumItem> {
        let mut out = Vec::new();
        for line_no in 1..=self.scan.line_count() {
            let line = self.scan.masked_line(line_no);
            for col in token_positions(line, "enum") {
                // `enum` must be an item keyword here, not part of a
                // path or macro body we cannot interpret; requiring the
                // next token to be an identifier filters `enum` inside
                // e.g. `macro_rules!` transcription fragments.
                let Some((name, after_name)) = ident_after(line, col + 4) else {
                    continue;
                };
                if let Some(item) = self.parse_enum(line_no, name, after_name) {
                    out.push(item);
                }
            }
        }
        out
    }

    /// Every `.{method}(` call site in the file, with its first argument
    /// when that argument is a same-line string literal.
    pub fn call_sites(&self, method: &str) -> Vec<CallSite> {
        let needle = format!(".{method}(");
        let mut out = Vec::new();
        for line_no in 1..=self.scan.line_count() {
            let masked = self.scan.masked_line(line_no);
            for col in token_positions(masked, &needle) {
                let after_paren = col + needle.len();
                out.push(CallSite {
                    line: line_no,
                    col: col + 1,
                    literal_arg: first_literal_arg(self.scan.raw_line(line_no), after_paren),
                    is_test: self.scan.is_test_line(line_no),
                });
            }
        }
        out
    }

    /// Parses one enum starting at (`line_no`, `col`); `after_name` is
    /// the column just past the name on that line.
    fn parse_enum(&self, line_no: usize, name: String, after_name: usize) -> Option<EnumItem> {
        // Find the body-opening `{` at angle depth 0, skipping generics
        // (`<...>`, tolerant of `->` inside `Fn` bounds) and any `where`
        // clause. The search is bounded to keep degenerate input cheap.
        let mut angle = 0i32;
        let mut body: Option<(usize, usize)> = None; // (line, col of `{`)
        let mut cur_line = line_no;
        let mut cur_col = after_name;
        'outer: while cur_line < line_no + 512 {
            let text = self.scan.masked_line(cur_line);
            let bytes = text.as_bytes();
            while cur_col < bytes.len() {
                match bytes[cur_col] {
                    b'<' => angle += 1,
                    b'>' if cur_col > 0 && bytes[cur_col - 1] == b'-' => {} // `->`
                    b'>' => angle -= 1,
                    b'{' if angle == 0 => {
                        body = Some((cur_line, cur_col));
                        break 'outer;
                    }
                    b';' if angle == 0 => return None, // not an item body
                    _ => {}
                }
                cur_col += 1;
            }
            if cur_line >= self.scan.line_count() {
                break;
            }
            cur_line += 1;
            cur_col = 0;
        }
        let (body_line, body_col) = body?;
        let variants = self.parse_variants(body_line, body_col)?;
        Some(EnumItem {
            name,
            line: line_no,
            is_test: self.scan.is_test_line(line_no),
            variants: variants
                .into_iter()
                .map(|(name, line)| EnumVariant {
                    docs: self.docs_above(line),
                    name,
                    line,
                })
                .collect(),
        })
    }

    /// Splits the `{ ... }` body starting at (`line`, `col`) into
    /// variants: identifiers at brace depth 1, each the first token of
    /// its comma-separated group (payloads in `(..)`/`{..}` and generics
    /// in `<..>` are skipped whole).
    fn parse_variants(&self, line: usize, col: usize) -> Option<Vec<(String, usize)>> {
        let mut depth = 0i32;
        let mut expect_variant = true;
        let mut out = Vec::new();
        let mut cur_line = line;
        let mut cur_col = col;
        loop {
            let text = self.scan.masked_line(cur_line).to_owned();
            let bytes = text.as_bytes();
            while cur_col < bytes.len() {
                let b = bytes[cur_col];
                match b {
                    b'{' | b'(' | b'[' => depth += 1,
                    b'}' | b')' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(out);
                        }
                    }
                    b',' if depth == 1 => expect_variant = true,
                    b'#' if depth == 1 => {} // attribute on the variant
                    _ if depth == 1 && expect_variant && (b == b'_' || b.is_ascii_alphabetic()) => {
                        if let Some((name, after)) = ident_at(&text, cur_col) {
                            // `= 3` discriminants and payloads follow the
                            // name; the name alone identifies the variant.
                            out.push((name, cur_line));
                            expect_variant = false;
                            cur_col = after;
                            continue;
                        }
                    }
                    _ => {}
                }
                cur_col += 1;
            }
            if cur_line >= self.scan.line_count() {
                return Some(out); // unterminated body: salvage what we have
            }
            cur_line += 1;
            cur_col = 0;
        }
    }

    /// The `///` doc lines immediately above `line`, skipping attribute
    /// lines (`#[...]`), in top-to-bottom order with markers stripped.
    fn docs_above(&self, line: usize) -> Vec<String> {
        let mut docs = Vec::new();
        let mut cur = line;
        while cur > 1 {
            cur -= 1;
            let raw = self.scan.raw_line(cur);
            let trimmed = raw.trim_start();
            if let Some(text) = trimmed.strip_prefix("///") {
                docs.push(text.trim().to_owned());
            } else if trimmed.starts_with("#[") || trimmed.starts_with("//") {
                continue;
            } else {
                break;
            }
        }
        docs.reverse();
        docs
    }
}

/// The identifier starting at the first non-space byte at or after
/// `from`, with the column just past it.
fn ident_after(line: &str, from: usize) -> Option<(String, usize)> {
    let bytes = line.as_bytes();
    let mut i = from;
    while i < bytes.len() && bytes[i] == b' ' {
        i += 1;
    }
    ident_at(line, i)
}

/// The identifier starting exactly at `at`, with the column past it.
fn ident_at(line: &str, at: usize) -> Option<(String, usize)> {
    let bytes = line.as_bytes();
    let first = *bytes.get(at)?;
    if !(first == b'_' || first.is_ascii_alphabetic()) {
        return None;
    }
    let mut end = at;
    while end < bytes.len() && (bytes[end] == b'_' || bytes[end].is_ascii_alphanumeric()) {
        end += 1;
    }
    Some((line[at..end].to_owned(), end))
}

/// The first argument of a call when it is a plain string literal that
/// opens on the same raw line at or after byte `from` (only whitespace
/// may precede the opening quote).
fn first_literal_arg(raw_line: &str, from: usize) -> Option<String> {
    let bytes = raw_line.as_bytes();
    let mut i = from;
    while i < bytes.len() && bytes[i] == b' ' {
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    let start = i + 1;
    let close = raw_line[start..].find('"')?;
    Some(raw_line[start..start + close].to_owned())
}

/// Parses the string-literal elements of a `&[&str]` const named `name`
/// in the scanned file, as `(value, line)` pairs. Elements are read from
/// the raw source between the `= &[` after the name token and the
/// closing `];`. Returns `None` when the file has no such const.
pub fn str_slice_const(scan: &Scan, name: &str) -> Option<Vec<(String, usize)>> {
    let mut at: Option<(usize, usize)> = None;
    for line_no in 1..=scan.line_count() {
        let line = scan.masked_line(line_no);
        if let Some(&col) = token_positions(line, name).first() {
            // Require a declaration (`const NAME`), not a mere mention.
            if token_positions(line, "const").iter().any(|&c| c < col) {
                at = Some((line_no, col));
                break;
            }
        }
    }
    let (start_line, _) = at?;
    let mut out = Vec::new();
    for line_no in start_line..=scan.line_count() {
        let raw = scan.raw_line(line_no);
        let masked = scan.masked_line(line_no);
        for value in raw_string_literals(raw, masked) {
            out.push((value, line_no));
        }
        // Masking blanks string interiors, so a `;` surviving in the
        // masked line is the declaration's real terminator.
        if masked.contains(';') {
            break;
        }
    }
    Some(out)
}

/// The plain string literals on one raw line, in order. The masked
/// counterpart locates the first line-comment start (`//` present in the
/// raw text but blanked in the mask) so quotes inside trailing comments
/// are not misread as literals.
fn raw_string_literals(raw: &str, masked: &str) -> Vec<String> {
    let raw_bytes = raw.as_bytes();
    let masked_bytes = masked.as_bytes();
    let mut end = raw_bytes.len().min(masked_bytes.len());
    for i in 0..end.saturating_sub(1) {
        if raw_bytes[i] == b'/' && raw_bytes[i + 1] == b'/' && masked_bytes[i] == b' ' {
            end = i;
            break;
        }
    }
    let mut out = Vec::new();
    let mut i = 0;
    while i < end {
        if raw_bytes[i] == b'"' {
            let mut j = i + 1;
            let mut value = String::new();
            while j < end {
                match raw_bytes[j] {
                    b'\\' => j += 2,
                    b'"' => break,
                    b => {
                        value.push(b as char);
                        j += 1;
                    }
                }
            }
            out.push(value);
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_enums(src: &str) -> Vec<EnumItem> {
        let scan = Scan::new(src);
        Model::new(&scan).enums()
    }

    #[test]
    fn parses_unit_and_payload_variants_with_docs() {
        let src = "\
/// Kinds.
pub enum Kind {
    /// Plain. [retry: never]
    Plain,
    /// Carrying. [retry: always]
    Carrying {
        /// Inner field doc, not a variant doc.
        inner: u32,
    },
    /// Tuple-style.
    Tuple(String, u64),
}
";
        let enums = model_enums(src);
        assert_eq!(enums.len(), 1);
        let item = &enums[0];
        assert_eq!(item.name, "Kind");
        let names: Vec<&str> = item.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["Plain", "Carrying", "Tuple"]);
        assert_eq!(item.variants[0].docs, ["Plain. [retry: never]"]);
        assert_eq!(item.variants[1].docs, ["Carrying. [retry: always]"]);
    }

    #[test]
    fn nested_generics_do_not_split_variants() {
        let src = "\
pub enum Holder<T: Iterator<Item = Vec<(u8, u16)>>> {
    Boxed(Box<dyn Fn(u32) -> Vec<T>>),
    Pair { left: Vec<Vec<T>>, right: [u8; 4] },
    Unit,
}
";
        let enums = model_enums(src);
        assert_eq!(enums.len(), 1);
        let names: Vec<&str> = enums[0].variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["Boxed", "Pair", "Unit"]);
    }

    #[test]
    fn enum_mention_in_macro_body_or_path_is_not_an_item() {
        let src = "\
macro_rules! gen {
    () => {
        enum Inner { A, B }
    };
}
pub fn f() -> std::mem::Discriminant<u8> { todo_like() }
";
        // The macro transcription *does* contain a lexical enum item; the
        // model reports it (a lexical model cannot expand macros) but the
        // path mention produces nothing and nothing panics.
        let enums = model_enums(src);
        assert!(enums.iter().all(|e| e.name == "Inner"));
    }

    #[test]
    fn cfg_test_enums_are_marked() {
        let src = "\
pub enum Prod { A }

#[cfg(test)]
mod tests {
    enum Fixture { X, Y }
}
";
        let enums = model_enums(src);
        assert_eq!(enums.len(), 2);
        assert!(!enums[0].is_test);
        assert!(enums[1].is_test, "enum inside #[cfg(test)] mod");
    }

    #[test]
    fn variant_attributes_and_discriminants_are_tolerated() {
        let src = "\
pub enum Wire {
    #[serde(rename = \"a\")]
    First = 1,
    Second = 2,
}
";
        let names: Vec<String> = model_enums(src)[0]
            .variants
            .iter()
            .map(|v| v.name.clone())
            .collect();
        assert_eq!(names, ["First", "Second"]);
    }

    #[test]
    fn call_sites_extract_same_line_literals_only() {
        let src = "\
fn f(c: &C) {
    c.consult(\"persist.session\", key, 0);
    c.consult(site_var, key, 1);
    c.consult(
        \"next.line\", key, 2);
}
";
        let scan = Scan::new(src);
        let sites = Model::new(&scan).call_sites("consult");
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].literal_arg.as_deref(), Some("persist.session"));
        assert_eq!(sites[1].literal_arg, None);
        assert_eq!(sites[2].literal_arg, None, "multi-line literal not seen");
    }

    #[test]
    fn call_sites_in_strings_are_invisible_and_tests_marked() {
        let src = "\
fn f() { let s = \"x.consult(\\\"fake\\\")\"; }
#[cfg(test)]
mod tests {
    fn t(c: &C) { c.consult(\"frame.read\", k, 0); }
}
";
        let scan = Scan::new(src);
        let sites = Model::new(&scan).call_sites("consult");
        assert_eq!(sites.len(), 1, "only the real call, not the string");
        assert!(sites[0].is_test);
    }

    #[test]
    fn str_slice_const_reads_elements_and_lines() {
        let src = "\
pub fn unrelated() {}
/// The registry.
pub const SITES: &[&str] = &[
    \"persist.session\",
    \"delta.commit\",
];
";
        let scan = Scan::new(src);
        let sites = str_slice_const(&scan, "SITES").expect("const found");
        assert_eq!(
            sites,
            vec![
                ("persist.session".to_owned(), 4),
                ("delta.commit".to_owned(), 5)
            ]
        );
        assert!(str_slice_const(&scan, "MISSING").is_none());
    }

    #[test]
    fn str_slice_const_single_line_and_mentions_do_not_confuse() {
        let src = "\
fn uses() { takes(SITES); }
const SITES: &[&str] = &[\"a\", \"b\"];
";
        let scan = Scan::new(src);
        let sites = str_slice_const(&scan, "SITES").expect("const found");
        assert_eq!(sites, vec![("a".to_owned(), 2), ("b".to_owned(), 2)]);
    }
}
