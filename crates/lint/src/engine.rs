//! Workspace discovery and the end-to-end lint run.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{CrateDebt, Report};
use crate::invariants::{check_site_registry, SiteRegistry};
use crate::rules::{analyze_file, finalize_file, FileAnalysis, RuleConfig};
use crate::scan::Scan;

/// What to lint and how.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Rule selection and strictness.
    pub rules: RuleConfig,
    /// Report only findings whose workspace-relative path starts with one
    /// of these prefixes. Empty means no filter.
    pub path_filters: Vec<String>,
}

/// Locates the workspace root by walking up from `start` until a
/// directory containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Lints every first-party source file under `root` and builds a report.
///
/// The scan covers `crates/*/src/**/*.rs`. Vendored dependency stand-ins
/// (`vendor/`) are third-party surface and out of policy; integration
/// test and bench trees are all-test code, which every rule skips anyway.
/// The lint fixture corpus (`crates/lint/fixtures/`) is intentionally
/// full of violations and lives outside any `src/` tree.
pub fn run(root: &Path, config: &EngineConfig) -> io::Result<Report> {
    struct Entry {
        rel: String,
        scan: Scan,
        analysis: FileAnalysis,
    }
    let mut entries: Vec<Entry> = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        for file in rust_files(&src)? {
            let rel = relative_unix_path(root, &file);
            if !path_filter_matches(config, &rel) {
                continue;
            }
            let source = fs::read_to_string(&file)?;
            let scan = Scan::new(&source);
            let analysis = analyze_file(&rel, &scan, &config.rules);
            entries.push(Entry {
                rel,
                scan,
                analysis,
            });
        }
    }
    let scanned = entries.len();

    // S2 cross-file pass: every literal consult site against the
    // registry, plus dead-site detection. Only a complete scan (no path
    // filters) can judge registry completeness — a partial run skipped
    // the files that would prove a site live.
    let complete = config.path_filters.is_empty();
    let registry: Option<(String, SiteRegistry)> = entries.iter().find_map(|e| {
        e.analysis
            .registry
            .as_ref()
            .map(|r| (e.rel.clone(), r.clone()))
    });
    let site_files: Vec<(String, Vec<_>)> = entries
        .iter()
        .map(|e| (e.rel.clone(), e.analysis.consult_sites.clone()))
        .collect();
    for (file, finding) in check_site_registry(&site_files, registry.as_ref(), complete) {
        if let Some(entry) = entries.iter_mut().find(|e| e.rel == file) {
            entry.analysis.findings.push(finding);
        }
    }

    // Finalize: suppressions, S5 staleness, per-crate debt.
    let stale_exempt: &[&str] = if complete { &[] } else { &["S2"] };
    let mut findings = Vec::new();
    let mut debt: Vec<CrateDebt> = Vec::new();
    for entry in entries {
        let outcome = finalize_file(
            &entry.rel,
            &entry.scan,
            &config.rules,
            entry.analysis,
            stale_exempt,
        );
        findings.extend(outcome.findings);
        if outcome.live_allows > 0 {
            let name = crate_name(&entry.rel);
            match debt.iter_mut().find(|d| d.name == name) {
                Some(d) => d.live_allows += outcome.live_allows,
                None => debt.push(CrateDebt {
                    name,
                    live_allows: outcome.live_allows,
                }),
            }
        }
    }

    Ok(Report::with_debt(findings, scanned, debt))
}

/// The crate a workspace-relative path belongs to
/// (`crates/<name>/...` → `<name>`).
fn crate_name(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or(rel)
        .to_owned()
}

fn path_filter_matches(config: &EngineConfig, rel: &str) -> bool {
    config.path_filters.is_empty() || config.path_filters.iter().any(|p| rel.starts_with(p))
}

/// All `.rs` files under `dir`, depth-first, sorted for stable reports.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&current)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for entry in entries {
            if entry.is_dir() {
                stack.push(entry);
            } else if entry.extension().is_some_and(|ext| ext == "rs") {
                out.push(entry);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, with `/` separators.
fn relative_unix_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
