//! `irgrid-lint` — the workspace's in-repo static-analysis pass.
//!
//! PR 2's retained congestion evaluator stakes a hard guarantee: the
//! threaded congestion map is bit-identical to the serial one, and a
//! checkpointed annealing run resumes bit-identically. Nothing in the
//! compiler enforces that. This crate is the machine-checked gate: a
//! zero-dependency lexical analysis pass (no `syn`; the workspace builds
//! offline against vendored stand-ins) that tokenizes every first-party
//! source file — comment- and string-aware, `#[cfg(test)]`-aware — and
//! enforces the project's determinism, panic-safety, and numeric-cast
//! policies with `file:line:col` diagnostics.
//!
//! # Rules
//!
//! * **D1 determinism** — no wall-clock (`std::time`, `Instant`,
//!   `SystemTime`) and no hash-ordered containers (`HashMap`/`HashSet`)
//!   in the cost crates.
//! * **D2 float reductions** — no order-sensitive float accumulation
//!   (`.sum::<f64>()`, float `fold`s, untyped `.sum()`) in the cost
//!   crates outside the audited `core/src/num/` module.
//! * **P1 panic policy** — no `unwrap`/`expect`/`panic!`/`todo!`/
//!   `unimplemented!` in non-test library code (slice indexing too,
//!   under `--strict-indexing`).
//! * **C1 cast audit** — no unaudited `as` casts between numeric types
//!   in the fixed-point and binomial paths.
//! * **U1 unsafe gate** — every library crate root carries
//!   `#![forbid(unsafe_code)]`.
//!
//! The v2 invariant families (see `invariants`) extend the pass beyond
//! lexical policy to the contracts PRs 4–8 introduced:
//!
//! * **S1 atomic persistence** — raw `File::create`/`fs::write`/
//!   `fs::rename`/`OpenOptions` in the persistence crates outside the
//!   blessed tmp+fsync+rename writer modules.
//! * **S2 chaos-site registry** — every chaos consult site string must
//!   appear in `REGISTERED_SITES` (`crates/serve/src/chaos.rs`);
//!   unregistered, non-literal, and registered-but-dead sites are all
//!   findings.
//! * **S3 protocol annotations** — every `ErrorKind` variant carries a
//!   `[retry: always|never|conditional]` classification, every
//!   `RequestOp` variant an `[idempotency: ...]` note.
//! * **S4 float comparisons** — `f64`/`f32` `==`/`!=` and
//!   `.partial_cmp(` ordering outside `to_bits`/`total_cmp` idioms in
//!   the cost crates.
//! * **S5 suppression debt** — stale allow directives whose rule no
//!   longer fires at their target, plus a per-crate live-allow ledger
//!   in the JSON report, gated against [`DEBT_CEILING`] in CI.
//!
//! Violations are suppressed site-by-site with
//! `// irgrid-lint: allow(<RULE>): <reason>`; a directive without a
//! reason is itself a violation (`A1`), and a directive that outlives
//! its finding is one too (`S5`). See `CONTRIBUTING.md` for the allow
//! policy and `DESIGN.md` §3h for the architecture.
//!
//! # Example
//!
//! ```
//! use irgrid_lint::{check_source, RuleConfig};
//!
//! let findings = check_source(
//!     "crates/core/src/example.rs",
//!     "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }",
//!     &RuleConfig::default(),
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "D2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod engine;
mod invariants;
mod model;
mod rules;
mod scan;

pub use diag::{CrateDebt, Finding, Format, Report};
pub use engine::{find_workspace_root, run, EngineConfig};
pub use rules::{RuleConfig, RULE_IDS};
pub use scan::{AllowDirective, MalformedDirective, Scan, KNOWN_RULES};

/// CI ceiling on `Report::debt_total`: the workspace-wide count of live
/// allow directives may never exceed this. The stale-allow sweep that
/// introduced S5 measured 82 live allows; the ceiling leaves small
/// headroom over that. Lowering it is a ratchet — raise it only with a
/// PR that argues why the new suppression is cheaper than the fix.
pub const DEBT_CEILING: usize = 90;

/// Lints one in-memory source file as if it lived at the
/// workspace-relative `rel_path` (which decides rule scope).
pub fn check_source(rel_path: &str, source: &str, config: &RuleConfig) -> Vec<Finding> {
    let scan = Scan::new(source);
    rules::check_file(rel_path, &scan, config)
}
