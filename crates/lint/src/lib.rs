//! `irgrid-lint` — the workspace's in-repo static-analysis pass.
//!
//! PR 2's retained congestion evaluator stakes a hard guarantee: the
//! threaded congestion map is bit-identical to the serial one, and a
//! checkpointed annealing run resumes bit-identically. Nothing in the
//! compiler enforces that. This crate is the machine-checked gate: a
//! zero-dependency lexical analysis pass (no `syn`; the workspace builds
//! offline against vendored stand-ins) that tokenizes every first-party
//! source file — comment- and string-aware, `#[cfg(test)]`-aware — and
//! enforces the project's determinism, panic-safety, and numeric-cast
//! policies with `file:line:col` diagnostics.
//!
//! # Rules
//!
//! * **D1 determinism** — no wall-clock (`std::time`, `Instant`,
//!   `SystemTime`) and no hash-ordered containers (`HashMap`/`HashSet`)
//!   in the cost crates.
//! * **D2 float reductions** — no order-sensitive float accumulation
//!   (`.sum::<f64>()`, float `fold`s, untyped `.sum()`) in the cost
//!   crates outside the audited `core/src/num/` module.
//! * **P1 panic policy** — no `unwrap`/`expect`/`panic!`/`todo!`/
//!   `unimplemented!` in non-test library code (slice indexing too,
//!   under `--strict-indexing`).
//! * **C1 cast audit** — no unaudited `as` casts between numeric types
//!   in the fixed-point and binomial paths.
//! * **U1 unsafe gate** — every library crate root carries
//!   `#![forbid(unsafe_code)]`.
//!
//! Violations are suppressed site-by-site with
//! `// irgrid-lint: allow(<RULE>): <reason>`; a directive without a
//! reason is itself a violation (`A1`). See `CONTRIBUTING.md` for the
//! allow policy and `DESIGN.md` for the architecture.
//!
//! # Example
//!
//! ```
//! use irgrid_lint::{check_source, RuleConfig};
//!
//! let findings = check_source(
//!     "crates/core/src/example.rs",
//!     "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }",
//!     &RuleConfig::default(),
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "D2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod engine;
mod rules;
mod scan;

pub use diag::{Finding, Format, Report};
pub use engine::{find_workspace_root, run, EngineConfig};
pub use rules::{RuleConfig, RULE_IDS};
pub use scan::{AllowDirective, MalformedDirective, Scan, KNOWN_RULES};

/// Lints one in-memory source file as if it lived at the
/// workspace-relative `rel_path` (which decides rule scope).
pub fn check_source(rel_path: &str, source: &str, config: &RuleConfig) -> Vec<Finding> {
    let scan = Scan::new(source);
    rules::check_file(rel_path, &scan, config)
}
