//! `irgrid-lint` CLI.
//!
//! ```text
//! cargo run -p irgrid-lint -- [flags]
//!
//! flags:
//!   --format human|json    Output format (default: human)
//!   --root <dir>           Workspace root (default: walk up from cwd)
//!   --rules <ID,ID,...>    Run only these rules (default: all)
//!   --paths <prefix>       Report only findings under this workspace-
//!                          relative prefix; repeatable
//!   --everywhere           Ignore per-rule path scopes (sweep mode)
//!   --strict-indexing      Also flag slice/array indexing under P1
//!   --list-rules           Print the rule table and exit
//!
//! exit status: 0 clean, 1 findings, 2 usage or I/O error.
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use irgrid_lint::{find_workspace_root, run, EngineConfig, Format, KNOWN_RULES};

fn main() -> ExitCode {
    match try_main() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(message) => {
            eprintln!("irgrid-lint: error: {message}");
            ExitCode::from(2)
        }
    }
}

fn try_main() -> Result<bool, String> {
    let mut config = EngineConfig::default();
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let value = args.next().ok_or("--format needs a value")?;
                format = value.parse()?;
            }
            "--root" => {
                let value = args.next().ok_or("--root needs a value")?;
                root = Some(PathBuf::from(value));
            }
            "--rules" => {
                let value = args.next().ok_or("--rules needs a value")?;
                for rule in value.split(',') {
                    let rule = rule.trim().to_uppercase();
                    if !KNOWN_RULES.contains(&rule.as_str()) {
                        return Err(format!(
                            "unknown rule `{rule}` (known: {})",
                            KNOWN_RULES.join(", ")
                        ));
                    }
                    config.rules.rules.push(rule);
                }
            }
            "--paths" => {
                let value = args.next().ok_or("--paths needs a value")?;
                config.path_filters.push(value);
            }
            "--everywhere" => config.rules.everywhere = true,
            "--strict-indexing" => config.rules.strict_indexing = true,
            "--list-rules" => {
                print!("{}", rule_table());
                return Ok(true);
            }
            "--help" | "-h" => {
                print!("{}", usage());
                return Ok(true);
            }
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }

    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass --root")?
        }
    };

    let report = run(&root, &config).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    print!("{}", report.render(format));
    Ok(report.is_clean())
}

fn usage() -> String {
    "usage: irgrid-lint [--format human|json] [--root <dir>] [--rules <ID,..>] \
     [--paths <prefix>]... [--everywhere] [--strict-indexing] [--list-rules]\n"
        .to_owned()
}

fn rule_table() -> String {
    let mut out = String::new();
    for (id, line) in [
        (
            "D1",
            "determinism: no wall-clock or hash-order iteration in cost crates",
        ),
        (
            "D2",
            "float reductions: no order-sensitive float accumulation in cost crates",
        ),
        (
            "P1",
            "panic policy: no unwrap/expect/panic!/todo!/unimplemented! in library code",
        ),
        (
            "C1",
            "cast audit: no unaudited numeric `as` casts in fixed-point/binomial paths",
        ),
        (
            "U1",
            "unsafe gate: every library crate root forbids unsafe_code",
        ),
        (
            "S1",
            "atomic persistence: no raw file writes outside the blessed writer modules",
        ),
        (
            "S2",
            "chaos registry: consult sites must be literals listed in REGISTERED_SITES",
        ),
        (
            "S3",
            "protocol notes: ErrorKind needs [retry: ...], RequestOp needs [idempotency: ...]",
        ),
        (
            "S4",
            "float compare: no f64/f32 ==/!= or partial_cmp outside to_bits/total_cmp idioms",
        ),
        (
            "S5",
            "suppression debt: stale allows are findings; live allows count against the ceiling",
        ),
        (
            "A1",
            "(reserved) malformed `irgrid-lint: allow(...)` directive",
        ),
    ] {
        out.push_str(&format!("{id}  {line}\n"));
    }
    out
}
