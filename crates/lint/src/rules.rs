//! The rule set: what each rule matches and where it applies.
//!
//! | ID | Name              | Default scope                               |
//! |----|-------------------|---------------------------------------------|
//! | D1 | determinism       | cost crates: `core`, `floorplan`, `anneal`, `fleet`, `irgrid`, `models`, `serve` |
//! | D2 | float-reduce      | cost crates, minus the `core/src/num/` allowlist |
//! | P1 | panic-policy      | every library crate's `src/`                 |
//! | C1 | cast-audit        | `core/src/fixed.rs` and `core/src/num/`      |
//! | U1 | unsafe-gate       | every `crates/*/src/lib.rs`                  |
//! | S1 | atomic-persistence| `serve`/`fleet`/`anneal`/`bench`, minus the blessed writer modules |
//! | S2 | chaos-registry    | every scanned file (sites vs `REGISTERED_SITES`) |
//! | S3 | protocol-notes    | the enums named in `ANNOTATED_ENUMS`         |
//! | S4 | float-compare     | cost crates, minus the `core/src/num/` allowlist |
//! | S5 | suppression-debt  | every `irgrid-lint: allow` directive         |
//!
//! All rules skip `#[cfg(test)]` spans and honor
//! `// irgrid-lint: allow(<RULE>): <reason>` suppressions; malformed
//! suppressions are themselves reported as `A1` (never suppressible).
//!
//! The pass runs in two phases. [`analyze_file`] produces the
//! *pre-suppression* finding set for one file — every rule, regardless
//! of `--rules` selection, because S5's staleness check needs to know
//! whether *any* rule still fires at an allow's target line.
//! [`finalize_file`] then applies suppressions, drops unselected rules,
//! generates S5 stale-allow findings, and counts the surviving (live)
//! allows as that file's suppression debt. The engine runs the S2
//! cross-file registry check between the two phases.

use crate::diag::Finding;
use crate::invariants::{self, ConsultRecord, SiteRegistry};
use crate::scan::{token_positions, Scan};

/// Every enforceable rule ID, in report order.
pub const RULE_IDS: &[&str] = &["D1", "D2", "P1", "C1", "U1", "S1", "S2", "S3", "S4", "S5"];

/// Which rules run and how strictly.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Rule IDs to run (subset of [`RULE_IDS`]). Empty means all.
    pub rules: Vec<String>,
    /// Ignore per-rule path scopes: run the selected rules on every
    /// scanned file (sweep mode; allowlists and `#[cfg(test)]` masking
    /// still apply).
    pub everywhere: bool,
    /// Also flag slice/array indexing under P1. Off by default: the
    /// grid kernels index dense buffers pervasively with bounds
    /// established by construction, so this sub-rule is advisory.
    pub strict_indexing: bool,
}

impl RuleConfig {
    fn runs(&self, rule: &str) -> bool {
        self.rules.is_empty() || self.rules.iter().any(|r| r == rule)
    }
}

/// Everything [`analyze_file`] learned about one file: the
/// pre-suppression findings plus the raw material the engine's
/// cross-file (S2) and finalization (S5) phases consume.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Pre-suppression findings from every per-file rule.
    pub findings: Vec<Finding>,
    /// Advisory findings used *only* to decide allow liveness: the
    /// strict-indexing P1 sub-rule when `--strict-indexing` is off, so
    /// a justified strict-mode allow is not reported as stale by a
    /// default (non-strict) run.
    pub advisory: Vec<Finding>,
    /// Chaos consult sites recorded for the S2 cross-file pass.
    pub consult_sites: Vec<ConsultRecord>,
    /// The parsed site registry, when this file is the registry file.
    pub registry: Option<SiteRegistry>,
}

/// One file's finalized contribution to the report.
#[derive(Debug)]
pub struct FileOutcome {
    /// Reported findings: suppressions applied, unselected rules
    /// dropped, S5 stale-allow findings added.
    pub findings: Vec<Finding>,
    /// Allows that still suppress a live finding — this file's
    /// suppression debt.
    pub live_allows: usize,
}

/// Crates whose numbers feed the cost function or the congestion map,
/// where iteration order and wall time must never influence results
/// (checkpoint-resume and thread-count bit-identity depend on it).
const COST_CRATE_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/floorplan/src/",
    "crates/anneal/src/",
    "crates/fleet/src/",
    "crates/irgrid/src/",
    "crates/models/src/",
    "crates/serve/src/",
];

/// Library crates under the panic policy. `bench` is excluded: it is a
/// terminal experiment harness where exiting on a broken invariant is
/// the right behavior.
const LIBRARY_CRATE_PREFIXES: &[&str] = &[
    "crates/geom/src/",
    "crates/netlist/src/",
    "crates/floorplan/src/",
    "crates/anneal/src/",
    "crates/core/src/",
    "crates/route/src/",
    "crates/fleet/src/",
    "crates/irgrid/src/",
    "crates/lint/src/",
    "crates/models/src/",
    "crates/serve/src/",
];

/// The fixed-point and binomial numeric paths audited by C1. The delta
/// evaluator is included because its bit-identity guarantee rests on
/// exact integer accumulation — an unaudited cast there can silently
/// break `delta == rebuild`.
const CAST_AUDIT_PREFIXES: &[&str] = &[
    "crates/core/src/fixed.rs",
    "crates/core/src/num/",
    "crates/core/src/irregular/delta.rs",
];

/// Modules where serial float accumulation is the sanctioned design
/// (Simpson integration, log-factorial tables): iteration order is fixed
/// by construction and reviewed there once, not per call site.
const FLOAT_REDUCE_ALLOWLIST: &[&str] = &["crates/core/src/num/"];

fn has_prefix(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Phase 1: runs every rule's per-file half over one scanned file,
/// producing pre-suppression findings.
///
/// `rel_path` must be workspace-relative with `/` separators — it decides
/// which rules apply. Rule *selection* (`--rules`) is deliberately not
/// applied here: S5 staleness is judged against the full rule set, so a
/// `--rules P1` run never mislabels a live `allow(D1)` as stale.
pub fn analyze_file(rel_path: &str, scan: &Scan, config: &RuleConfig) -> FileAnalysis {
    let mut findings = Vec::new();

    // Malformed suppression directives are always reported: a broken
    // allow is silently *not* suppressing, which is worse than noise.
    for bad in &scan.malformed {
        findings.push(Finding {
            file: rel_path.to_owned(),
            line: bad.line,
            col: 1,
            rule: "A1".to_owned(),
            message: format!("malformed irgrid-lint directive: {}", bad.problem),
        });
    }

    let in_scope = |prefixes: &[&str]| config.everywhere || has_prefix(rel_path, prefixes);

    if in_scope(COST_CRATE_PREFIXES) {
        check_determinism(rel_path, scan, &mut findings);
    }
    if in_scope(COST_CRATE_PREFIXES) && !has_prefix(rel_path, FLOAT_REDUCE_ALLOWLIST) {
        check_float_reductions(rel_path, scan, &mut findings);
        invariants::check_float_compare(rel_path, scan, &mut findings);
    }
    if in_scope(LIBRARY_CRATE_PREFIXES) {
        check_panic_policy(rel_path, scan, config, &mut findings);
    }
    if in_scope(CAST_AUDIT_PREFIXES) {
        check_cast_audit(rel_path, scan, &mut findings);
    }
    if is_crate_root(rel_path) && !scan.has_forbid_unsafe() {
        findings.push(Finding {
            file: rel_path.to_owned(),
            line: 1,
            col: 1,
            rule: "U1".to_owned(),
            message: "library crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
        });
    }

    invariants::check_atomic_persistence(rel_path, scan, config.everywhere, &mut findings);
    let (consult_sites, registry) = invariants::collect_chaos_sites(rel_path, scan, &mut findings);
    invariants::check_enum_annotations(rel_path, scan, &mut findings);

    // Strict-indexing findings feed allow-liveness even when strict mode
    // is off, so `allow(P1)` on an indexing site survives default runs.
    let mut advisory = Vec::new();
    if !config.strict_indexing && in_scope(LIBRARY_CRATE_PREFIXES) {
        let strict = RuleConfig {
            strict_indexing: true,
            ..config.clone()
        };
        let mut strict_findings = Vec::new();
        check_panic_policy(rel_path, scan, &strict, &mut strict_findings);
        advisory.extend(
            strict_findings
                .into_iter()
                .filter(|f| f.message.contains("strict mode")),
        );
    }

    FileAnalysis {
        findings,
        advisory,
        consult_sites,
        registry,
    }
}

/// Phase 2: turns one file's pre-suppression analysis into reported
/// findings and a suppression-debt count.
///
/// Applies allow suppressions, drops findings from unselected rules
/// (`A1` always reports), then audits every allow directive: ones whose
/// rule still fires at their target line are *live* (counted as debt);
/// the rest are *stale* and reported as S5. Rules in `stale_exempt`
/// (e.g. `S2` when the cross-file pass could not run) are treated as
/// live rather than falsely flagged.
pub fn finalize_file(
    rel_path: &str,
    scan: &Scan,
    config: &RuleConfig,
    analysis: FileAnalysis,
    stale_exempt: &[&str],
) -> FileOutcome {
    let FileAnalysis {
        findings: all,
        advisory,
        ..
    } = analysis;

    let fires_at = |rule: &str, line: usize| {
        all.iter()
            .chain(advisory.iter())
            .any(|f| f.rule == rule && f.line == line)
    };

    let mut reported: Vec<Finding> = all
        .iter()
        .filter(|f| f.rule == "A1" || config.runs(&f.rule))
        .filter(|f| f.rule == "A1" || !scan.is_allowed(&f.rule, f.line))
        .cloned()
        .collect();

    // Audit non-S5 allows first; `allow(S5)` directives are judged
    // against the stale findings this very pass generates.
    let mut live_allows = 0usize;
    let mut stale = Vec::new();
    for allow in scan.allows.iter().filter(|a| a.rule != "S5") {
        if fires_at(&allow.rule, allow.target_line) || stale_exempt.contains(&allow.rule.as_str()) {
            live_allows += 1;
        } else {
            stale.push(Finding {
                file: rel_path.to_owned(),
                line: allow.line,
                col: 1,
                rule: "S5".to_owned(),
                message: format!(
                    "stale `allow({0})`: {0} no longer fires at its target (line {1}) — \
                     delete the directive",
                    allow.rule, allow.target_line
                ),
            });
        }
    }
    for allow in scan.allows.iter().filter(|a| a.rule == "S5") {
        if stale.iter().any(|f| f.line == allow.target_line) {
            live_allows += 1;
        } else {
            stale.push(Finding {
                file: rel_path.to_owned(),
                line: allow.line,
                col: 1,
                rule: "S5".to_owned(),
                message: format!(
                    "stale `allow(S5)`: no stale-allow finding at its target (line {}) — \
                     delete the directive",
                    allow.target_line
                ),
            });
        }
    }
    if config.runs("S5") {
        reported.extend(stale.into_iter().filter(|f| !scan.is_allowed("S5", f.line)));
    }

    FileOutcome {
        findings: reported,
        live_allows,
    }
}

/// Runs the full per-file pipeline in single-file mode.
///
/// Without workspace context the S2 cross-file checks (registry
/// membership, dead sites) cannot run, so `allow(S2)` directives are
/// exempt from staleness here.
pub fn check_file(rel_path: &str, scan: &Scan, config: &RuleConfig) -> Vec<Finding> {
    let analysis = analyze_file(rel_path, scan, config);
    finalize_file(rel_path, scan, config, analysis, &["S2"]).findings
}

/// Whether `rel_path` is a library crate root (`crates/<name>/src/lib.rs`).
fn is_crate_root(rel_path: &str) -> bool {
    rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs")
}

/// Iterates non-test masked lines.
fn code_lines(scan: &Scan) -> impl Iterator<Item = (usize, &str)> {
    (1..=scan.line_count())
        .filter(|&n| !scan.is_test_line(n))
        .map(|n| (n, scan.masked_line(n)))
}

fn push(
    findings: &mut Vec<Finding>,
    file: &str,
    line: usize,
    col0: usize,
    rule: &str,
    msg: String,
) {
    findings.push(Finding {
        file: file.to_owned(),
        line,
        col: col0 + 1,
        rule: rule.to_owned(),
        message: msg,
    });
}

/// D1: wall-clock reads and hash-order iteration sources in cost crates.
fn check_determinism(file: &str, scan: &Scan, findings: &mut Vec<Finding>) {
    const PATTERNS: &[(&str, &str)] = &[
        (
            "std::time",
            "wall-clock dependency in a cost crate breaks checkpoint-resume reproducibility",
        ),
        (
            "Instant",
            "`Instant` in a cost crate: time must never influence costs or maps",
        ),
        (
            "SystemTime",
            "`SystemTime` in a cost crate: time must never influence costs or maps",
        ),
        (
            "HashMap",
            "`HashMap` iteration order is unstable; use `BTreeMap` or index-keyed `Vec` in cost crates",
        ),
        (
            "HashSet",
            "`HashSet` iteration order is unstable; use `BTreeSet` or a sorted `Vec` in cost crates",
        ),
    ];
    for (line_no, line) in code_lines(scan) {
        for (needle, why) in PATTERNS {
            // `std::time` subsumes `Instant`/`SystemTime` mentions on the
            // same line; report each distinct pattern at most once.
            if let Some(&col) = token_positions(line, needle).first() {
                if *needle != "std::time" && line.contains("std::time") {
                    continue;
                }
                push(
                    findings,
                    file,
                    line_no,
                    col,
                    "D1",
                    format!("`{needle}`: {why}"),
                );
            }
        }
    }
}

/// Turbofish element types D2 accepts without comment: integral machine
/// types plus the workspace's integer micron newtypes.
const INTEGRAL_TYPES: &[&str] = &[
    "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize", "Um",
    "UmArea",
];

/// D2: order-sensitive float accumulation.
///
/// A reduction call (`.sum(...)`, `.product(...)`, `.fold(...)`) is
/// flagged when float involvement is visible lexically: an `f64`/`f32`
/// turbofish, an `f64`/`f32` token earlier in the same statement, or a
/// float-literal fold seed. A bare `.sum()`/`.product()` with no type
/// evidence at all is also flagged — as ambiguous — so new reductions
/// must either declare an integral element type via turbofish or carry a
/// justified allow.
fn check_float_reductions(file: &str, scan: &Scan, findings: &mut Vec<Finding>) {
    let mut stmt = String::new();
    for (line_no, line) in code_lines(scan) {
        for method in [".sum(", ".sum::<", ".product(", ".product::<", ".fold("] {
            for col in token_positions(line, method) {
                if method == ".sum(" && line[col..].starts_with(".sum::<") {
                    continue; // handled by the turbofish pattern
                }
                if method == ".product(" && line[col..].starts_with(".product::<") {
                    continue;
                }
                let context = format!("{stmt}{}", &line[..col]);
                let rest = &line[col + method.len()..];
                if let Some(msg) = classify_reduction(method, rest, &context) {
                    push(findings, file, line_no, col, "D2", msg);
                }
            }
        }
        // Reset the statement context at statement/block boundaries; keep
        // the tail after the last boundary so `let n = x; let y: f64 =`
        // carries only the second statement forward.
        stmt.push_str(line);
        stmt.push(' ');
        if let Some(pos) = stmt.rfind([';', '{', '}']) {
            stmt = stmt[pos + 1..].to_owned();
        }
        if stmt.len() > 2048 {
            stmt.clear(); // degenerate formatting; drop stale context
        }
    }
}

/// Decides whether one reduction call is a D2 finding.
fn classify_reduction(method: &str, after_open: &str, context: &str) -> Option<String> {
    let context_float =
        !token_positions(context, "f64").is_empty() || !token_positions(context, "f32").is_empty();
    match method {
        ".sum::<" | ".product::<" => {
            let ty = after_open.split('>').next().unwrap_or("").trim();
            if ty == "f64" || ty == "f32" {
                Some(format!(
                    "float reduction `{}{}>()`: order-dependent accumulation in a cost crate",
                    method.trim_start_matches('.'),
                    ty
                ))
            } else if INTEGRAL_TYPES.contains(&ty) {
                None
            } else {
                Some(format!(
                    "reduction over non-integral type `{ty}`: audit for float accumulation"
                ))
            }
        }
        ".sum(" | ".product(" => {
            let context_integral = INTEGRAL_TYPES
                .iter()
                .any(|ty| !token_positions(context, ty).is_empty());
            if context_float {
                Some(format!(
                    "float reduction `{}...)` (f64/f32 in statement): order-dependent accumulation",
                    method
                ))
            } else if context_integral {
                // An explicit annotation like `let wire: i64 = ...sum();`
                // types the reduction as firmly as a turbofish would.
                None
            } else {
                Some(format!(
                    "untyped reduction `{})`: declare an integral element type via turbofish \
                     or justify with an allow",
                    method
                ))
            }
        }
        ".fold(" => {
            let seed = after_open.trim_start();
            let float_seed = seed
                .split([',', ')'])
                .next()
                .is_some_and(|s| s.trim().parse::<f64>().is_ok() && s.contains('.'));
            (context_float || float_seed)
                .then(|| "float `fold` accumulation: order-dependent in a cost crate".to_owned())
        }
        _ => None,
    }
}

/// P1: panicking constructs in non-test library code.
fn check_panic_policy(file: &str, scan: &Scan, config: &RuleConfig, findings: &mut Vec<Finding>) {
    const PATTERNS: &[(&str, &str)] = &[
        (
            ".unwrap(",
            "`unwrap` in library code: return a typed error or use a justified `expect`",
        ),
        (
            ".expect(",
            "`expect` in library code: justify the invariant with an allow or return a typed error",
        ),
        (
            "panic!",
            "`panic!` in library code: return a typed error instead",
        ),
        ("todo!", "`todo!` must not ship in library code"),
        (
            "unimplemented!",
            "`unimplemented!` must not ship in library code",
        ),
    ];
    for (line_no, line) in code_lines(scan) {
        for (needle, why) in PATTERNS {
            for col in token_positions(line, needle) {
                push(findings, file, line_no, col, "P1", (*why).to_owned());
            }
        }
        if config.strict_indexing {
            for col in index_expr_positions(line) {
                push(
                    findings,
                    file,
                    line_no,
                    col,
                    "P1",
                    "slice/array indexing can panic: prefer `get`/iterators (strict mode)"
                        .to_owned(),
                );
            }
        }
    }
}

/// Byte columns of `[` that open an index expression: preceded (modulo
/// spaces) by an identifier character, `)`, or `]`. Attribute (`#[`),
/// type (`: [T; N]`), and slice-pattern brackets are not preceded by
/// those, so they don't match.
fn index_expr_positions(line: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let mut j = i;
        while j > 0 && bytes[j - 1] == b' ' {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let prev = bytes[j - 1];
        if prev == b')' || prev == b']' || prev == b'_' || prev.is_ascii_alphanumeric() {
            out.push(i);
        }
    }
    out
}

/// Numeric types whose `as` casts C1 audits.
const NUMERIC_TYPES: &[&str] = &[
    "f32", "f64", "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128",
    "usize",
];

/// C1: `as` casts between numeric types in the fixed-point and binomial
/// paths. Every such cast is flagged — lossless ones should use
/// `From`/`TryFrom`, lossy ones need a justified allow documenting the
/// value range.
fn check_cast_audit(file: &str, scan: &Scan, findings: &mut Vec<Finding>) {
    for (line_no, line) in code_lines(scan) {
        for col in token_positions(line, "as") {
            let rest = line[col + 2..].trim_start();
            let target = rest
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .next()
                .unwrap_or("");
            if NUMERIC_TYPES.contains(&target) {
                push(
                    findings,
                    file,
                    line_no,
                    col,
                    "C1",
                    format!(
                        "`as {target}` in a precision-audited path: use `From`/`TryFrom` or \
                         justify the value range with an allow"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let scan = Scan::new(src);
        check_file(path, &scan, &RuleConfig::default())
    }

    const CORE: &str = "crates/core/src/sample.rs";

    #[test]
    fn d1_flags_time_and_hash_in_cost_crates_only() {
        let src = "use std::time::Instant;\nlet m = HashMap::new();\n";
        let hits = run(CORE, src);
        assert_eq!(hits.iter().filter(|f| f.rule == "D1").count(), 2);
        assert!(run("crates/geom/src/sample.rs", src)
            .iter()
            .all(|f| f.rule != "D1"));
    }

    #[test]
    fn d2_flags_float_turbofish_and_untyped_sums() {
        let hits = run(CORE, "let x = v.iter().sum::<f64>();\n");
        assert!(hits.iter().any(|f| f.rule == "D2"));
        let hits = run(
            CORE,
            "let x: f64 = v.iter()\n    .map(|v| v * 2.0)\n    .sum();\n",
        );
        assert!(hits.iter().any(|f| f.rule == "D2" && f.line == 3));
        let hits = run(CORE, "let x = v.iter().sum();\n");
        assert!(
            hits.iter().any(|f| f.rule == "D2"),
            "untyped sum is ambiguous"
        );
    }

    #[test]
    fn d2_accepts_integral_turbofish_and_nonfloat_folds() {
        assert!(run(CORE, "let x = v.iter().sum::<i64>();\n").is_empty());
        assert!(run(CORE, "let a = r.iter().map(Rect::area).sum::<UmArea>();\n").is_empty());
        assert!(run(
            CORE,
            "let p = v.iter().fold(Point::ORIGIN, |a, p| a + p);\n"
        )
        .is_empty());
    }

    #[test]
    fn d2_skips_the_num_allowlist() {
        assert!(run(
            "crates/core/src/num/simpson.rs",
            "let s = v.iter().sum::<f64>();\n"
        )
        .is_empty());
    }

    #[test]
    fn p1_flags_panics_outside_tests_only() {
        let src =
            "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let hits = run(CORE, src);
        assert_eq!(hits.iter().filter(|f| f.rule == "P1").count(), 1);
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn p1_strict_indexing_is_opt_in() {
        let src = "fn f(v: &[f64]) -> f64 { v[0] }\n";
        assert!(run(CORE, src).is_empty());
        let scan = Scan::new(src);
        let config = RuleConfig {
            strict_indexing: true,
            ..RuleConfig::default()
        };
        let hits = check_file(CORE, &scan, &config);
        assert!(hits.iter().any(|f| f.rule == "P1"));
    }

    #[test]
    fn c1_flags_numeric_casts_in_audited_paths_only() {
        let src = "let x = n as f64;\nlet label = kind as Label;\n";
        let hits = run("crates/core/src/fixed.rs", src);
        assert_eq!(hits.iter().filter(|f| f.rule == "C1").count(), 1);
        assert!(run(CORE, src).is_empty(), "outside the audited paths");
    }

    #[test]
    fn u1_requires_forbid_in_crate_roots() {
        let hits = run("crates/core/src/lib.rs", "pub mod grid;\n");
        assert!(hits.iter().any(|f| f.rule == "U1"));
        assert!(run(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod grid;\n"
        )
        .is_empty());
        assert!(run("crates/core/src/grid.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_only_that_rule_and_line() {
        let src = "fn f() { x.unwrap(); } // irgrid-lint: allow(P1): guarded by is_some above\nfn g() { y.unwrap(); }\n";
        let hits = run(CORE, src);
        assert_eq!(hits.iter().filter(|f| f.rule == "P1").count(), 1);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn malformed_allow_is_an_a1_finding_and_does_not_suppress() {
        let src = "fn f() { x.unwrap(); } // irgrid-lint: allow(P1)\n";
        let hits = run(CORE, src);
        assert!(hits.iter().any(|f| f.rule == "A1"));
        assert!(hits.iter().any(|f| f.rule == "P1"));
    }

    #[test]
    fn patterns_inside_strings_and_comments_are_invisible() {
        let src = "let msg = \"call .unwrap() or panic!\"; // HashMap here\n";
        assert!(run(CORE, src).is_empty());
    }

    #[test]
    fn everywhere_mode_reaches_out_of_scope_files() {
        let scan = Scan::new("use std::time::Instant;\n");
        let config = RuleConfig {
            everywhere: true,
            rules: vec!["D1".to_owned()],
            ..RuleConfig::default()
        };
        let hits = check_file("crates/bench/src/perf.rs", &scan, &config);
        assert!(hits.iter().any(|f| f.rule == "D1"));
    }
}
