//! The v2 invariant rule families (S1–S5).
//!
//! PRs 4–8 layered hard contracts on top of the original determinism
//! policies: every durable byte goes through one atomic writer, every
//! chaos consultation names a registered site, every protocol variant
//! declares its retry/idempotency story, float ordering goes through
//! `total_cmp`/`to_bits`, and suppressions never outlive the finding
//! they hide. These rules make those contracts machine-checked:
//!
//! | ID | Name                | What it catches |
//! |----|---------------------|-----------------|
//! | S1 | atomic-persistence  | raw `File::create`/`fs::write`/`fs::rename`/`OpenOptions` in persistence crates outside the blessed writer modules |
//! | S2 | chaos-site registry | consult sites not in `REGISTERED_SITES`, non-literal site strings, and registered-but-never-consulted dead sites |
//! | S3 | protocol-annotations| `ErrorKind` variants without a `[retry: ...]` classification, `RequestOp` variants without an `[idempotency: ...]` note |
//! | S4 | float-compare       | `f64`/`f32` `==`/`!=` and `.partial_cmp(` ordering outside `to_bits`-style helpers in the cost crates |
//! | S5 | suppression-debt    | `irgrid-lint: allow` directives whose rule no longer fires at their target line |
//!
//! S1, S3, and S4 are per-file. S2 needs the whole scanned set (the
//! registry lives in one file, consult sites in others) and runs as the
//! engine's cross-file pass. S5 runs at finalization, after every other
//! rule has produced its pre-suppression findings.

use crate::diag::Finding;
use crate::model::{str_slice_const, Model};
use crate::scan::{token_positions, Scan};

/// Where the chaos-site registry lives.
pub const REGISTRY_FILE: &str = "crates/serve/src/chaos.rs";

/// The `&[&str]` const naming every legitimate consult site.
pub const REGISTRY_CONST: &str = "REGISTERED_SITES";

/// Methods that consult the chaos injector with a site string.
const CONSULT_METHODS: &[&str] = &["consult", "decide"];

/// Modules allowed to pass a *variable* site through to the injector:
/// the injector itself and the store plumbing that wraps it. Literal
/// sites in these files are still checked against the registry.
const SITE_PLUMBING: &[&str] = &["crates/serve/src/chaos.rs", "crates/serve/src/store.rs"];

/// Crates whose durable state must go through an atomic
/// tmp+fsync+rename writer.
const S1_SCOPE: &[&str] = &[
    "crates/serve/src/",
    "crates/fleet/src/",
    "crates/anneal/src/",
    "crates/bench/src/",
];

/// The blessed writer modules: the only places in the S1 scope allowed
/// to touch the filesystem write API directly. Everything else routes
/// through them ([`SnapshotStore`], the fleet manifest/telemetry
/// writers, annealing checkpoints, the shared `BENCH_*.json` emitter).
const S1_BLESSED: &[&str] = &[
    "crates/serve/src/store.rs",
    "crates/fleet/src/manifest.rs",
    "crates/fleet/src/telemetry.rs",
    "crates/anneal/src/checkpoint.rs",
    "crates/bench/src/report.rs",
];

/// Raw write-path tokens S1 flags outside the blessed modules.
const S1_PATTERNS: &[(&str, &str)] = &[
    (
        "File::create",
        "raw file creation bypasses the atomic tmp+fsync+rename writer",
    ),
    (
        "fs::write",
        "raw `fs::write` is not atomic; a crash here can leave a torn file",
    ),
    (
        "fs::rename",
        "renames belong inside the blessed atomic writer, where the tmp is fsynced first",
    ),
    (
        "OpenOptions",
        "raw file handles bypass the atomic writer; route through the blessed module",
    ),
];

/// One enum whose variants must carry a structured doc annotation.
struct AnnotatedEnum {
    /// Workspace-relative file expected to define the enum.
    file: &'static str,
    /// The enum's name.
    enum_name: &'static str,
    /// Marker that must open the annotation, e.g. `[retry:`.
    marker: &'static str,
    /// Accepted classification keywords (first word after the colon);
    /// `None` accepts any non-empty note.
    values: Option<&'static [&'static str]>,
    /// What the annotation records, for messages.
    what: &'static str,
}

/// The protocol enums S3 audits. A variant added without its annotation
/// is a finding; so is the enum disappearing from the configured file
/// (which would otherwise silently disable the rule).
const ANNOTATED_ENUMS: &[AnnotatedEnum] = &[
    AnnotatedEnum {
        file: "crates/serve/src/protocol.rs",
        enum_name: "ErrorKind",
        marker: "[retry:",
        values: Some(&["always", "never", "conditional"]),
        what: "retryable classification",
    },
    AnnotatedEnum {
        file: "crates/serve/src/protocol.rs",
        enum_name: "RequestOp",
        marker: "[idempotency:",
        values: None,
        what: "idempotency note",
    },
];

/// A consult call site recorded for the S2 cross-file pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsultRecord {
    /// The literal site string, when the first argument was one.
    pub site: Option<String>,
    /// 1-based line of the call.
    pub line: usize,
    /// 1-based column of the call.
    pub col: usize,
}

/// The chaos-site registry parsed from [`REGISTRY_FILE`].
pub type SiteRegistry = Vec<(String, usize)>;

fn push(findings: &mut Vec<Finding>, file: &str, line: usize, col: usize, rule: &str, msg: String) {
    findings.push(Finding {
        file: file.to_owned(),
        line,
        col,
        rule: rule.to_owned(),
        message: msg,
    });
}

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// S1: raw filesystem write APIs outside the blessed writer modules.
pub fn check_atomic_persistence(
    file: &str,
    scan: &Scan,
    everywhere: bool,
    findings: &mut Vec<Finding>,
) {
    if !everywhere && !in_scope(file, S1_SCOPE) {
        return;
    }
    if S1_BLESSED.contains(&file) {
        return;
    }
    for line_no in 1..=scan.line_count() {
        if scan.is_test_line(line_no) {
            continue;
        }
        let line = scan.masked_line(line_no);
        for (needle, why) in S1_PATTERNS {
            if let Some(&col) = token_positions(line, needle).first() {
                push(
                    findings,
                    file,
                    line_no,
                    col + 1,
                    "S1",
                    format!("`{needle}`: {why}"),
                );
            }
        }
    }
}

/// S2 per-file half: records consult sites for the cross-file pass and
/// flags non-literal site arguments outside the plumbing modules.
pub fn collect_chaos_sites(
    file: &str,
    scan: &Scan,
    findings: &mut Vec<Finding>,
) -> (Vec<ConsultRecord>, Option<SiteRegistry>) {
    let model = Model::new(scan);
    let mut records = Vec::new();
    for method in CONSULT_METHODS {
        for site in model.call_sites(method) {
            if site.is_test {
                continue;
            }
            if site.literal_arg.is_none() {
                if !SITE_PLUMBING.contains(&file) {
                    push(
                        findings,
                        file,
                        site.line,
                        site.col,
                        "S2",
                        format!(
                            "`.{method}(` with a non-literal chaos site: sites must be string \
                             literals checked against `{REGISTRY_CONST}` (or live in the \
                             injector plumbing)"
                        ),
                    );
                }
                continue;
            }
            records.push(ConsultRecord {
                site: site.literal_arg,
                line: site.line,
                col: site.col,
            });
        }
    }
    let registry = if file == REGISTRY_FILE {
        str_slice_const(scan, REGISTRY_CONST)
    } else {
        None
    };
    (records, registry)
}

/// S2 cross-file half: checks every recorded literal site against the
/// registry and reports registered-but-never-consulted dead sites.
///
/// `complete` says the scan covered the full workspace (no path
/// filters); registry-completeness checks only run then, so a partial
/// `--paths` run never invents findings about files it did not read.
pub fn check_site_registry(
    files: &[(String, Vec<ConsultRecord>)],
    registry: Option<&(String, SiteRegistry)>,
    complete: bool,
) -> Vec<(String, Finding)> {
    let mut out = Vec::new();
    match registry {
        Some((reg_file, entries)) => {
            for (file, records) in files {
                for record in records {
                    let Some(site) = &record.site else { continue };
                    if !entries.iter().any(|(name, _)| name == site) {
                        out.push((
                            file.clone(),
                            Finding {
                                file: file.clone(),
                                line: record.line,
                                col: record.col,
                                rule: "S2".to_owned(),
                                message: format!(
                                    "chaos site \"{site}\" is not in `{REGISTRY_CONST}` \
                                     ({reg_file}): a typo here silently disables fault injection"
                                ),
                            },
                        ));
                    }
                }
            }
            if complete {
                for (site, line) in entries {
                    let consulted = files
                        .iter()
                        .any(|(_, recs)| recs.iter().any(|r| r.site.as_deref() == Some(site)));
                    if !consulted {
                        out.push((
                            reg_file.clone(),
                            Finding {
                                file: reg_file.clone(),
                                line: *line,
                                col: 1,
                                rule: "S2".to_owned(),
                                message: format!(
                                    "registered chaos site \"{site}\" is never consulted: \
                                     dead sites hide coverage gaps — delete it or wire it in"
                                ),
                            },
                        ));
                    }
                }
            }
        }
        None if complete => {
            for (file, records) in files {
                for record in records {
                    if record.site.is_some() {
                        out.push((
                            file.clone(),
                            Finding {
                                file: file.clone(),
                                line: record.line,
                                col: record.col,
                                rule: "S2".to_owned(),
                                message: format!(
                                    "chaos consult site found but no `{REGISTRY_CONST}` registry \
                                     in {REGISTRY_FILE}: the site table must be central"
                                ),
                            },
                        ));
                    }
                }
            }
        }
        None => {}
    }
    out
}

/// S3: protocol enums must annotate every variant.
pub fn check_enum_annotations(file: &str, scan: &Scan, findings: &mut Vec<Finding>) {
    let configured: Vec<&AnnotatedEnum> = ANNOTATED_ENUMS
        .iter()
        .filter(|cfg| cfg.file == file)
        .collect();
    if configured.is_empty() {
        return;
    }
    let enums = Model::new(scan).enums();
    for cfg in configured {
        let Some(item) = enums.iter().find(|e| e.name == cfg.enum_name && !e.is_test) else {
            push(
                findings,
                file,
                1,
                1,
                "S3",
                format!(
                    "expected `enum {}` in this file (S3 audits its {}); \
                     if it moved, update the lint's ANNOTATED_ENUMS table",
                    cfg.enum_name, cfg.what
                ),
            );
            continue;
        };
        for variant in &item.variants {
            let docs = variant.docs.join(" ");
            match annotation_value(&docs, cfg.marker) {
                None => push(
                    findings,
                    file,
                    variant.line,
                    1,
                    "S3",
                    format!(
                        "variant `{}::{}` has no `{} ...]` {} in its doc comment",
                        cfg.enum_name, variant.name, cfg.marker, cfg.what
                    ),
                ),
                Some(value) => {
                    let keyword = value.split_whitespace().next().unwrap_or("");
                    let ok = match cfg.values {
                        Some(accepted) => accepted.contains(&keyword),
                        None => !keyword.is_empty(),
                    };
                    if !ok {
                        push(
                            findings,
                            file,
                            variant.line,
                            1,
                            "S3",
                            format!(
                                "variant `{}::{}` has `{} {}]` but the {} must start with one \
                                 of: {}",
                                cfg.enum_name,
                                variant.name,
                                cfg.marker,
                                value,
                                cfg.what,
                                cfg.values.map_or_else(
                                    || "a non-empty note".to_owned(),
                                    |v| v.join(", ")
                                ),
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// The text between `marker` and the closing `]`, if present.
fn annotation_value(docs: &str, marker: &str) -> Option<String> {
    let start = docs.find(marker)? + marker.len();
    let rest = &docs[start..];
    let end = rest.find(']')?;
    Some(rest[..end].trim().to_owned())
}

/// S4: lexically-visible float equality and `partial_cmp` ordering.
///
/// Flags `.partial_cmp(` calls (the `fn partial_cmp` definition line of
/// a `PartialOrd` impl delegating to `cmp` is exempt) and `==`/`!=`
/// whose adjacent operand shows float evidence — a float literal or an
/// `f64`/`f32` path segment. Lines using the sanctioned `to_bits`
/// comparison idiom are exempt.
pub fn check_float_compare(file: &str, scan: &Scan, findings: &mut Vec<Finding>) {
    for line_no in 1..=scan.line_count() {
        if scan.is_test_line(line_no) {
            continue;
        }
        let line = scan.masked_line(line_no);
        if line.contains("to_bits") {
            continue;
        }
        for col in token_positions(line, ".partial_cmp(") {
            if line.contains("fn partial_cmp") {
                continue;
            }
            push(
                findings,
                file,
                line_no,
                col + 1,
                "S4",
                "`partial_cmp` ordering on floats is non-total: use `total_cmp` (or compare \
                 `to_bits` for equality)"
                    .to_owned(),
            );
        }
        for (col, op) in float_eq_positions(line) {
            push(
                findings,
                file,
                line_no,
                col + 1,
                "S4",
                format!(
                    "float `{op}` comparison: bit-identity contracts compare `to_bits()`, \
                     approximate checks belong behind a named tolerance helper"
                ),
            );
        }
    }
}

/// Byte columns of `==`/`!=` whose neighbor operand is lexically a float.
fn float_eq_positions(line: &str) -> Vec<(usize, &'static str)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let op = match (bytes[i], bytes[i + 1]) {
            (b'=', b'=') => "==",
            (b'!', b'=') => "!=",
            _ => {
                i += 1;
                continue;
            }
        };
        // Not part of a compound operator (`<=`, `>=`, `+=`, `!=...`).
        let prev = i.checked_sub(1).map(|p| bytes[p]);
        let compound = matches!(
            prev,
            Some(b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^')
        ) || bytes.get(i + 2) == Some(&b'=');
        if !compound
            && (operand_before(line, i).is_some_and(|t| is_float_token(&t))
                || operand_after(line, i + 2).is_some_and(|t| is_float_token(&t)))
        {
            out.push((i, op));
        }
        i += 2;
    }
    out
}

/// The path/literal token ending just before byte `at` (spaces skipped).
fn operand_before(line: &str, at: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut end = at;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_path_byte(bytes[start - 1]) {
        start -= 1;
    }
    (start < end).then(|| line[start..end].to_owned())
}

/// The path/literal token starting at or after byte `from` (spaces and a
/// unary `-` skipped).
fn operand_after(line: &str, from: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut start = from;
    while start < bytes.len() && (bytes[start] == b' ' || bytes[start] == b'-') {
        start += 1;
    }
    let mut end = start;
    while end < bytes.len() && is_path_byte(bytes[end]) {
        end += 1;
    }
    (start < end).then(|| line[start..end].to_owned())
}

fn is_path_byte(b: u8) -> bool {
    b == b'_' || b == b'.' || b == b':' || b.is_ascii_alphanumeric()
}

/// Whether a token is lexically a float: a decimal literal, a float-
/// suffixed literal, or a path containing an `f64`/`f32` segment.
fn is_float_token(token: &str) -> bool {
    let first = token.as_bytes().first().copied().unwrap_or(0);
    if first.is_ascii_digit() {
        return !token.starts_with("0x")
            && (token.contains('.') || token.ends_with("f64") || token.ends_with("f32"));
    }
    token
        .split("::")
        .flat_map(|seg| seg.split('.'))
        .any(|seg| seg == "f64" || seg == "f32")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for<F: Fn(&str, &Scan, &mut Vec<Finding>)>(
        file: &str,
        src: &str,
        rule: F,
    ) -> Vec<Finding> {
        let scan = Scan::new(src);
        let mut findings = Vec::new();
        rule(file, &scan, &mut findings);
        findings
    }

    #[test]
    fn s1_flags_raw_writes_outside_blessed_modules_only() {
        let src = "use std::fs;\npub fn save(p: &std::path::Path) {\n    let _ = fs::write(p, b\"x\");\n    let _ = fs::File::create(p);\n}\n";
        let scan = Scan::new(src);
        let mut findings = Vec::new();
        check_atomic_persistence("crates/serve/src/session.rs", &scan, false, &mut findings);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == "S1"));

        let mut blessed = Vec::new();
        check_atomic_persistence("crates/serve/src/store.rs", &scan, false, &mut blessed);
        assert!(blessed.is_empty(), "the blessed writer module is exempt");

        let mut out_of_scope = Vec::new();
        check_atomic_persistence("crates/netlist/src/io.rs", &scan, false, &mut out_of_scope);
        assert!(out_of_scope.is_empty(), "netlist is outside the S1 scope");

        let mut everywhere = Vec::new();
        check_atomic_persistence("crates/netlist/src/io.rs", &scan, true, &mut everywhere);
        assert_eq!(everywhere.len(), 2, "--everywhere reaches it");
    }

    #[test]
    fn s1_skips_test_code() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::fs::write(\"x\", \"y\"); }\n}\n";
        let scan = Scan::new(src);
        let mut findings = Vec::new();
        check_atomic_persistence("crates/fleet/src/pool.rs", &scan, false, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn s2_records_literals_and_flags_variable_sites() {
        let src = "fn f(s: &Store, site: &str) {\n    s.consult(\"delta.commit\", \"k\", 0);\n    s.consult(site, \"k\", 1);\n}\n";
        let scan = Scan::new(src);
        let mut findings = Vec::new();
        let (records, registry) =
            collect_chaos_sites("crates/serve/src/manager.rs", &scan, &mut findings);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].site.as_deref(), Some("delta.commit"));
        assert!(registry.is_none());
        assert_eq!(
            findings.len(),
            1,
            "variable site outside plumbing: {findings:?}"
        );
        assert_eq!(findings[0].rule, "S2");

        let mut plumbing_findings = Vec::new();
        let (_, _) =
            collect_chaos_sites("crates/serve/src/store.rs", &scan, &mut plumbing_findings);
        assert!(
            plumbing_findings.is_empty(),
            "plumbing may pass sites through"
        );
    }

    #[test]
    fn s2_cross_file_catches_typos_and_dead_sites() {
        let registry = (
            REGISTRY_FILE.to_owned(),
            vec![
                ("persist.session".to_owned(), 10),
                ("dead.site".to_owned(), 11),
            ],
        );
        let files = vec![(
            "crates/serve/src/manager.rs".to_owned(),
            vec![
                ConsultRecord {
                    site: Some("persist.session".to_owned()),
                    line: 5,
                    col: 9,
                },
                ConsultRecord {
                    site: Some("persist.sessoin".to_owned()),
                    line: 7,
                    col: 9,
                },
            ],
        )];
        let findings = check_site_registry(&files, Some(&registry), true);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .any(|(_, f)| f.message.contains("persist.sessoin") && f.line == 7));
        assert!(findings.iter().any(|(file, f)| file == REGISTRY_FILE
            && f.message.contains("dead.site")
            && f.line == 11));

        let partial = check_site_registry(&files, Some(&registry), false);
        assert_eq!(partial.len(), 1, "dead-site check needs a complete scan");
    }

    #[test]
    fn s2_missing_registry_is_reported_on_complete_scans() {
        let files = vec![(
            "crates/serve/src/manager.rs".to_owned(),
            vec![ConsultRecord {
                site: Some("persist.session".to_owned()),
                line: 3,
                col: 1,
            }],
        )];
        assert_eq!(check_site_registry(&files, None, true).len(), 1);
        assert!(check_site_registry(&files, None, false).is_empty());
    }

    #[test]
    fn s3_requires_markers_and_vocabulary() {
        let src = "\
pub enum ErrorKind {
    /// Queue full. [retry: always]
    Backpressure,
    /// No classification here.
    Unclassified,
    /// Bad keyword. [retry: maybe]
    BadKeyword,
}
";
        let findings = findings_for("crates/serve/src/protocol.rs", src, check_enum_annotations);
        // `Unclassified` (missing), `BadKeyword` (vocabulary), plus the
        // whole missing `RequestOp` enum.
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("Unclassified")));
        assert!(findings.iter().any(|f| f.message.contains("BadKeyword")));
        assert!(findings.iter().any(|f| f.message.contains("RequestOp")));
    }

    #[test]
    fn s3_only_audits_configured_files() {
        let src = "pub enum ErrorKind { Unmarked }\n";
        assert!(findings_for("crates/core/src/lib.rs", src, check_enum_annotations).is_empty());
    }

    #[test]
    fn s4_flags_float_eq_and_partial_cmp_but_not_to_bits() {
        let cases: &[(&str, usize)] = &[
            ("if x == 0.0 { y() }\n", 1),
            ("if 1.5 != threshold { y() }\n", 1),
            ("if cost == f64::INFINITY { y() }\n", 1),
            ("v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n", 1),
            ("if a.to_bits() == b.to_bits() { y() }\n", 0),
            ("if count == 0 { y() }\n", 0),
            ("if i % 2 == 1 { w = 4.0; }\n", 0),
            ("let ok = n <= 3;\n", 0),
            ("impl PartialOrd for E { fn partial_cmp(&self, o: &E) -> Option<O> { Some(self.cmp(o)) } }\n", 0),
            ("a.total_cmp(&b);\n", 0),
        ];
        for (src, expect) in cases {
            let findings = findings_for("crates/core/src/x.rs", src, check_float_compare);
            assert_eq!(findings.len(), *expect, "case {src:?}: {findings:?}");
        }
    }

    #[test]
    fn s4_skips_test_extents() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { assert!(x == 0.5); }\n}\n";
        assert!(findings_for("crates/core/src/x.rs", src, check_float_compare).is_empty());
    }
}
