//! Diagnostics: findings and their human/JSON renderings.

use serde::Serialize;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Rule ID (`D1`, `D2`, `P1`, `C1`, `U1`, or `A1` for a malformed
    /// suppression directive).
    pub rule: String,
    /// What was matched and why it matters.
    pub message: String,
}

impl Finding {
    /// `path:line:col: RULE: message` — the human format, one per line.
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Live suppression count for one crate — the S5 debt ledger entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CrateDebt {
    /// Crate name (the directory under `crates/`).
    pub name: String,
    /// Allow directives in this crate that still suppress a live
    /// finding.
    pub live_allows: usize,
}

/// A whole lint run, for `--format json`.
#[derive(Debug, Serialize)]
pub struct Report {
    /// Report format version.
    pub version: u32,
    /// Number of files scanned.
    pub scanned_files: usize,
    /// Number of findings (redundant with `findings.len()`, kept so the
    /// JSON is self-describing when findings are elided downstream).
    pub finding_count: usize,
    /// Total live allow directives across the workspace. Gated against
    /// [`crate::DEBT_CEILING`] in CI.
    pub debt_total: usize,
    /// Per-crate live-allow counts, sorted by crate name; crates with
    /// zero debt are omitted.
    pub suppression_debt: Vec<CrateDebt>,
    /// The findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Builds a report with no debt ledger (single-file / test use).
    pub fn new(findings: Vec<Finding>, scanned_files: usize) -> Report {
        Report::with_debt(findings, scanned_files, Vec::new())
    }

    /// Builds a report, sorting findings and the debt ledger into a
    /// stable order.
    pub fn with_debt(
        mut findings: Vec<Finding>,
        scanned_files: usize,
        mut suppression_debt: Vec<CrateDebt>,
    ) -> Report {
        findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
        });
        suppression_debt.sort_by(|a, b| a.name.cmp(&b.name));
        Report {
            version: 2,
            scanned_files,
            finding_count: findings.len(),
            debt_total: suppression_debt.iter().map(|d| d.live_allows).sum(),
            suppression_debt,
            findings,
        }
    }

    /// Whether the run found no violations.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders in the requested format.
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Human => {
                let mut out = String::new();
                for finding in &self.findings {
                    out.push_str(&finding.render_human());
                    out.push('\n');
                }
                out.push_str(&format!(
                    "irgrid-lint: {} finding(s) in {} file(s) scanned; \
                     suppression debt {} live allow(s)\n",
                    self.finding_count, self.scanned_files, self.debt_total
                ));
                out
            }
            Format::Json => {
                let mut text = serde_json::to_string_pretty(self)
                    .unwrap_or_else(|_| "{\"error\":\"serialization failed\"}".to_owned());
                text.push('\n');
                text
            }
        }
    }
}

/// Output format for the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `path:line:col: RULE: message` lines plus a summary.
    Human,
    /// A machine-readable [`Report`] object.
    Json,
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Format, String> {
        match s {
            "human" => Ok(Format::Human),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format `{other}` (expected human|json)")),
        }
    }
}
