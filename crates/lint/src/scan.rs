//! Comment- and string-aware source scanning.
//!
//! The scanner is the foundation every rule builds on. It produces a
//! *masked* copy of the source in which the interiors of comments,
//! string/char literals, and raw strings are replaced by spaces (newlines
//! are preserved so line/column arithmetic is unchanged). Rules then run
//! plain token matching over the masked text and can never be fooled by a
//! pattern that only occurs inside a literal or a comment.
//!
//! Alongside masking, one pass extracts:
//!
//! * the line spans covered by `#[cfg(test)]` items, so rules scoped to
//!   non-test code can skip them;
//! * `// irgrid-lint: allow(<RULE>): <reason>` suppression directives,
//!   including which source line each directive targets;
//! * malformed directives (unknown rule, missing reason), which the
//!   engine reports under the reserved rule ID `A1`.
//!
//! The scanner is deliberately *lexical*: it does not parse Rust. That
//! keeps the crate dependency-free (no `syn` under the offline vendored
//! constraint) at the cost of a small amount of imprecision, which the
//! rules compensate for with conservative matching plus justified
//! `allow` annotations.

/// A suppression directive parsed from a
/// `// irgrid-lint: allow(<RULE>): <reason>` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// The rule ID being suppressed (e.g. `"D1"`).
    pub rule: String,
    /// The justification text after the closing `):`. Never empty — a
    /// directive without a reason is rejected as malformed.
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// 1-based line the directive suppresses: the comment's own line for
    /// a trailing comment, or the next non-blank code line for a comment
    /// that stands alone on its line.
    pub target_line: usize,
}

/// A directive that looked like an `irgrid-lint:` comment but failed to
/// parse. Reported by the engine as rule `A1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedDirective {
    /// 1-based line of the broken comment.
    pub line: usize,
    /// What was wrong with it.
    pub problem: String,
}

/// Result of scanning one source file.
#[derive(Debug)]
pub struct Scan {
    /// The unmodified source bytes. Rules that must see literal or doc
    /// content (chaos-site strings, enum variant annotations) read this
    /// after locating code positions in the masked copy.
    raw: Vec<u8>,
    /// Source with comment/literal interiors blanked to spaces. Same
    /// byte length and newline positions as the input.
    masked: Vec<u8>,
    /// Byte offset of the start of each line (index 0 = line 1).
    line_starts: Vec<usize>,
    /// Per line (index 0 = line 1): inside a `#[cfg(test)]` item.
    test_lines: Vec<bool>,
    /// Well-formed suppression directives.
    pub allows: Vec<AllowDirective>,
    /// Broken `irgrid-lint:` comments.
    pub malformed: Vec<MalformedDirective>,
}

/// Rule IDs a directive may suppress.
pub const KNOWN_RULES: &[&str] = &["D1", "D2", "P1", "C1", "U1", "S1", "S2", "S3", "S4", "S5"];

const DIRECTIVE_PREFIX: &str = "irgrid-lint:";

impl Scan {
    /// Scans `source`, masking literals and comments and extracting
    /// test spans and suppression directives.
    pub fn new(source: &str) -> Scan {
        let bytes = source.as_bytes();
        let mut masked = bytes.to_vec();
        // (comment byte offset, directive text) for post-processing once
        // line starts are known.
        let mut raw_directives: Vec<(usize, String)> = Vec::new();

        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    let start = i;
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\n' {
                        j += 1;
                    }
                    let text = String::from_utf8_lossy(&bytes[i + 2..j]).into_owned();
                    let trimmed = text.trim_start_matches('/').trim_start_matches('!').trim();
                    if trimmed.starts_with(DIRECTIVE_PREFIX) {
                        raw_directives.push((start, trimmed.to_owned()));
                    }
                    mask(&mut masked, start, j);
                    i = j;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    let start = i;
                    let mut depth = 1usize;
                    let mut j = i + 2;
                    while j < bytes.len() && depth > 0 {
                        if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                            depth += 1;
                            j += 2;
                        } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                            depth -= 1;
                            j += 2;
                        } else {
                            j += 1;
                        }
                    }
                    mask(&mut masked, start, j);
                    i = j;
                }
                b'r' | b'b' | b'c' if !is_ident_byte(bytes.get(i.wrapping_sub(1)).copied()) => {
                    if let Some(end) = raw_or_prefixed_string_end(bytes, i) {
                        mask(&mut masked, i, end);
                        i = end;
                    } else {
                        i += 1;
                    }
                }
                b'"' => {
                    let end = plain_string_end(bytes, i);
                    mask(&mut masked, i, end);
                    i = end;
                }
                b'\'' => {
                    if let Some(end) = char_literal_end(bytes, i) {
                        mask(&mut masked, i, end);
                        i = end;
                    } else {
                        // A lifetime or loop label: leave it.
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }

        let mut line_starts = vec![0usize];
        for (pos, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                line_starts.push(pos + 1);
            }
        }

        let test_lines = mark_test_lines(&masked, &line_starts);

        let mut scan = Scan {
            raw: bytes.to_vec(),
            masked,
            line_starts,
            test_lines,
            allows: Vec::new(),
            malformed: Vec::new(),
        };
        scan.resolve_directives(&raw_directives);
        scan
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// The masked text of 1-based `line` (no trailing newline).
    pub fn masked_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.masked.len(), |&next| next.saturating_sub(1));
        // Masking only ever replaces bytes with ASCII spaces, leaving any
        // other multi-byte sequences intact, so the slice stays UTF-8.
        std::str::from_utf8(&self.masked[start..end]).unwrap_or("")
    }

    /// The *unmasked* text of 1-based `line` (no trailing newline).
    /// Comment and literal interiors are intact — use this only after
    /// locating a position in the masked copy, never for matching.
    pub fn raw_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.raw.len(), |&next| next.saturating_sub(1));
        std::str::from_utf8(&self.raw[start..end]).unwrap_or("")
    }

    /// Whether 1-based `line` lies inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// Whether a well-formed directive suppresses `rule` on `line`.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.target_line == line)
    }

    /// Whether the masked source contains the attribute
    /// `#![forbid(unsafe_code)]` (whitespace-tolerant).
    pub fn has_forbid_unsafe(&self) -> bool {
        let text = String::from_utf8_lossy(&self.masked);
        let squashed: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        squashed.contains("#![forbid(unsafe_code)]")
    }

    fn resolve_directives(&mut self, raw: &[(usize, String)]) {
        for (offset, text) in raw {
            let line = self.line_of(*offset);
            match parse_directive(text) {
                Ok((rule, reason)) => {
                    let standalone = self.blank_before(*offset, line);
                    let target_line = if standalone {
                        self.next_code_line(line)
                    } else {
                        line
                    };
                    self.allows.push(AllowDirective {
                        rule,
                        reason,
                        line,
                        target_line,
                    });
                }
                Err(problem) => self.malformed.push(MalformedDirective { line, problem }),
            }
        }
    }

    /// 1-based line containing byte `offset`.
    fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        }
    }

    /// Whether the masked bytes between the start of `line` and `offset`
    /// are all whitespace (i.e. the comment stands alone on its line).
    fn blank_before(&self, offset: usize, line: usize) -> bool {
        let start = self.line_starts[line - 1];
        self.masked[start..offset]
            .iter()
            .all(|b| b.is_ascii_whitespace())
    }

    /// First line after `line` with non-blank masked content, or `line`
    /// itself when the file ends first (the directive then targets
    /// nothing, which is harmless).
    fn next_code_line(&self, line: usize) -> usize {
        let mut candidate = line + 1;
        while candidate <= self.line_count() {
            if !self.masked_line(candidate).trim().is_empty() {
                return candidate;
            }
            candidate += 1;
        }
        line
    }
}

fn mask(masked: &mut [u8], from: usize, to: usize) {
    let to = to.min(masked.len());
    for b in masked.iter_mut().take(to).skip(from) {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn is_ident_byte(b: Option<u8>) -> bool {
    b.is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
}

/// Parses `irgrid-lint: allow(<RULE>): <reason>` (the caller has already
/// stripped the comment markers and verified the prefix).
fn parse_directive(text: &str) -> Result<(String, String), String> {
    let rest = text[DIRECTIVE_PREFIX.len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "expected `allow(<RULE>): <reason>` after `{DIRECTIVE_PREFIX}`"
        ));
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(` in directive".to_owned());
    };
    let rule = rest[..close].trim().to_owned();
    if !KNOWN_RULES.contains(&rule.as_str()) {
        return Err(format!(
            "unknown rule `{rule}` (known: {})",
            KNOWN_RULES.join(", ")
        ));
    }
    let after = rest[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        return Err("missing `: <reason>` after `allow(...)` — every allow needs a reason".into());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("empty reason — every allow needs a non-empty justification".into());
    }
    Ok((rule, reason.to_owned()))
}

/// If `bytes[i]` begins a raw/byte/C string opener (`r"`, `r#"`, `br"`,
/// `b"`, `c"`, ...), returns the byte offset one past its closing quote.
fn raw_or_prefixed_string_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') || bytes.get(j) == Some(&b'c') {
        j += 1;
    }
    let raw = bytes.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while raw && bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    if !raw {
        // b"..." / c"..." use ordinary escape rules.
        return Some(plain_string_end(bytes, j));
    }
    // Raw string: ends at `"` followed by `hashes` hash marks; no escapes.
    let mut k = j + 1;
    while k < bytes.len() {
        if bytes[k] == b'"' && bytes[k + 1..].iter().take_while(|&&b| b == b'#').count() >= hashes {
            return Some(k + 1 + hashes);
        }
        k += 1;
    }
    Some(bytes.len())
}

/// One past the closing quote of a plain string starting at `bytes[i] == b'"'`.
fn plain_string_end(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// If `bytes[i] == b'\''` starts a char literal (not a lifetime), returns
/// one past its closing quote.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        b'\\' => {
            // Escaped char: scan for the closing quote, starting at the
            // backslash so `'\\'` consumes the whole escape pair.
            let mut j = i + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1),
                    b'\n' => return None,
                    _ => j += 1,
                }
            }
            None
        }
        &first => {
            // One UTF-8 character followed by a closing quote, else it is
            // a lifetime (`'a`) or loop label (`'outer:`).
            let width = utf8_width(first);
            let close = i + 1 + width;
            (bytes.get(close) == Some(&b'\'')).then_some(close + 1)
        }
    }
}

fn utf8_width(lead: u8) -> usize {
    match lead {
        b if b < 0x80 => 1,
        b if b & 0xE0 == 0xC0 => 2,
        b if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

/// Marks every line covered by a `#[cfg(test)]` item.
///
/// For each whitespace-tolerant occurrence of `#[cfg(test)]` the item
/// extent is found lexically: skip any further attributes, then take
/// everything up to the first top-level `;` (item without a body, e.g. a
/// gated `use`) or through the matching `}` of the first top-level `{`.
fn mark_test_lines(masked: &[u8], line_starts: &[usize]) -> Vec<bool> {
    let mut test = vec![false; line_starts.len()];
    let text = masked;
    let mut i = 0;
    while i < text.len() {
        if text[i] == b'#' {
            if let Some(after_attr) = match_cfg_test(text, i) {
                if let Some(end) = item_end(text, after_attr) {
                    let from = line_index(line_starts, i);
                    let to = line_index(line_starts, end.saturating_sub(1));
                    for flag in test.iter_mut().take(to + 1).skip(from) {
                        *flag = true;
                    }
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    test
}

/// 0-based line index containing byte `offset`.
fn line_index(line_starts: &[usize], offset: usize) -> usize {
    match line_starts.binary_search(&offset) {
        Ok(idx) => idx,
        Err(idx) => idx - 1,
    }
}

/// If `text[i..]` starts a `#[cfg(test)]` attribute (whitespace-tolerant),
/// returns the offset just past its closing `]`.
fn match_cfg_test(text: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    let mut expect = |token: &[u8]| -> bool {
        while j < text.len() && text[j].is_ascii_whitespace() {
            j += 1;
        }
        if text[j..].starts_with(token) {
            j += token.len();
            true
        } else {
            false
        }
    };
    for token in [b"#" as &[u8], b"[", b"cfg", b"(", b"test", b")", b"]"] {
        if !expect(token) {
            return None;
        }
    }
    Some(j)
}

/// Lexical extent of the item starting after an attribute at `start`:
/// skips further attributes, then returns one past the first top-level
/// `;` or the `}` matching the first top-level `{`.
fn item_end(text: &[u8], start: usize) -> Option<usize> {
    let mut i = start;
    // Skip stacked attributes.
    loop {
        while i < text.len() && text[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < text.len() && text[i] == b'#' {
            let mut j = i + 1;
            while j < text.len() && text[j].is_ascii_whitespace() {
                j += 1;
            }
            if text.get(j) == Some(&b'[') {
                let mut depth = 0usize;
                while j < text.len() {
                    match text[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        break;
    }
    // Find the item's extent.
    let mut paren = 0isize;
    let mut bracket = 0isize;
    while i < text.len() {
        match text[i] {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b';' if paren == 0 && bracket == 0 => return Some(i + 1),
            b'{' if paren == 0 && bracket == 0 => {
                let mut depth = 0usize;
                while i < text.len() {
                    match text[i] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(i + 1);
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return Some(text.len());
            }
            _ => {}
        }
        i += 1;
    }
    Some(text.len())
}

/// Finds `needle` in `haystack` as a whole token: the bytes immediately
/// before and after the match must not be identifier characters. Returns
/// 0-based byte offsets of every occurrence.
pub fn token_positions(haystack: &str, needle: &str) -> Vec<usize> {
    let hay = haystack.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(needle) {
        let at = from + rel;
        let before = at.checked_sub(1).map(|p| hay[p]);
        let after = hay.get(at + needle.len()).copied();
        let first = needle.as_bytes().first().copied();
        let last = needle.as_bytes().last().copied();
        let before_ok = !is_ident_byte(before) || !is_ident_byte(first);
        let after_ok = !is_ident_byte(after) || !is_ident_byte(last);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_comments_but_keeps_code() {
        let scan = Scan::new("let x = 1; // uses unwrap() here\nlet y = 2;\n");
        assert_eq!(scan.masked_line(1).trim_end(), "let x = 1;");
        assert_eq!(scan.masked_line(2), "let y = 2;");
    }

    #[test]
    fn masks_nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b\n";
        let scan = Scan::new(src);
        let line = scan.masked_line(1);
        assert!(line.contains('a') && line.contains('b'));
        assert!(!line.contains("inner"));
        assert!(!line.contains("still"));
    }

    #[test]
    fn block_comment_spanning_lines_keeps_line_count() {
        let src = "fn f() {}\n/* one\ntwo\nthree */\nfn g() {}\n";
        let scan = Scan::new(src);
        assert!(scan.masked_line(2).trim().is_empty());
        assert!(scan.masked_line(3).trim().is_empty());
        assert_eq!(scan.masked_line(5), "fn g() {}");
    }

    #[test]
    fn masks_plain_strings_with_escapes() {
        let scan = Scan::new(r#"let s = "quote \" unwrap() inside"; let t = 1;"#);
        let line = scan.masked_line(1);
        assert!(!line.contains("unwrap"));
        assert!(line.contains("let t = 1;"));
    }

    #[test]
    fn masks_raw_strings_with_hashes() {
        let src = "let s = r##\"panic! \"# not done\"##; let u = 2;\n";
        let scan = Scan::new(src);
        let line = scan.masked_line(1);
        assert!(!line.contains("panic"));
        assert!(line.contains("let u = 2;"));
    }

    #[test]
    fn masks_byte_and_c_strings() {
        let scan = Scan::new("let s = b\"unwrap()\"; let c = c\"todo!\"; let k = 3;\n");
        let line = scan.masked_line(1);
        assert!(!line.contains("unwrap") && !line.contains("todo"));
        assert!(line.contains("let k = 3;"));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let scan = Scan::new("fn f<'a>(x: &'a str) -> char { '\\'' }\nlet q = 'y';\n");
        assert!(scan.masked_line(1).contains("'a"));
        assert!(!scan.masked_line(2).contains('y'));
    }

    #[test]
    fn ident_ending_in_r_is_not_raw_string() {
        let scan = Scan::new("let number = 4; for x in 0..number {}\n");
        assert!(scan.masked_line(1).contains("number"));
        assert!(scan.masked_line(1).contains("for x"));
    }

    #[test]
    fn cfg_test_module_span_tracked() {
        let src = "fn prod() { val.unwrap(); }\n\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n\nfn prod2() {}\n";
        let scan = Scan::new(src);
        assert!(!scan.is_test_line(1));
        assert!(scan.is_test_line(3));
        assert!(scan.is_test_line(4));
        assert!(scan.is_test_line(5));
        assert!(scan.is_test_line(6));
        assert!(!scan.is_test_line(8));
    }

    #[test]
    fn cfg_test_on_single_fn_with_stacked_attrs() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper(a: [u8; 2]) {\n    a[0];\n}\nfn prod() {}\n";
        let scan = Scan::new(src);
        assert!(scan.is_test_line(3));
        assert!(scan.is_test_line(4));
        assert!(scan.is_test_line(5));
        assert!(!scan.is_test_line(6));
    }

    #[test]
    fn cfg_test_on_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::time::Duration;\nfn prod() {}\n";
        let scan = Scan::new(src);
        assert!(scan.is_test_line(2));
        assert!(!scan.is_test_line(3));
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "let x = v.pop(); // irgrid-lint: allow(P1): pop is guarded above\n";
        let scan = Scan::new(src);
        assert_eq!(scan.allows.len(), 1);
        assert_eq!(scan.allows[0].rule, "P1");
        assert_eq!(scan.allows[0].target_line, 1);
        assert!(scan.is_allowed("P1", 1));
        assert!(!scan.is_allowed("D1", 1));
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "fn f() {\n    // irgrid-lint: allow(D1): deadline check, not cost\n\n    let t = Instant::now();\n}\n";
        let scan = Scan::new(src);
        assert_eq!(scan.allows[0].target_line, 4);
        assert!(scan.is_allowed("D1", 4));
    }

    #[test]
    fn stacked_standalone_allows_share_a_target() {
        let src = "// irgrid-lint: allow(D1): measured, not cost\n// irgrid-lint: allow(P1): infallible here\nlet t = Instant::now().elapsed().as_secs_f64();\n";
        let scan = Scan::new(src);
        assert!(scan.is_allowed("D1", 3));
        assert!(scan.is_allowed("P1", 3));
    }

    #[test]
    fn malformed_allows_are_reported() {
        for (src, needle) in [
            ("// irgrid-lint: allow(P1)\nlet x = 1;\n", "missing"),
            (
                "// irgrid-lint: allow(P1):   \nlet x = 1;\n",
                "empty reason",
            ),
            (
                "// irgrid-lint: allow(Z9): nope\nlet x = 1;\n",
                "unknown rule",
            ),
            (
                "// irgrid-lint: disable(P1): nope\nlet x = 1;\n",
                "expected",
            ),
        ] {
            let scan = Scan::new(src);
            assert!(scan.allows.is_empty(), "{src}");
            assert_eq!(scan.malformed.len(), 1, "{src}");
            assert!(scan.malformed[0].problem.contains(needle), "{src}");
        }
    }

    #[test]
    fn token_positions_respect_boundaries() {
        assert_eq!(
            token_positions("HashMap HashMapX xHashMap", "HashMap"),
            vec![0]
        );
        assert_eq!(token_positions("a.sum()", ".sum("), vec![1]);
        assert!(token_positions("should_panic", "panic!").is_empty());
    }

    #[test]
    fn forbid_unsafe_detection() {
        assert!(Scan::new("#![forbid(unsafe_code)]\nfn main() {}\n").has_forbid_unsafe());
        assert!(Scan::new("#![forbid( unsafe_code )]\n").has_forbid_unsafe());
        assert!(!Scan::new("// #![forbid(unsafe_code)]\n").has_forbid_unsafe());
        assert!(!Scan::new("fn main() {}\n").has_forbid_unsafe());
    }
}
