//! The tier-1 gate: the full-workspace lint run must be clean.
//!
//! This is the test that turns the lint from a CI convenience into a
//! local invariant — `cargo test` fails the moment a PR introduces a
//! wall-clock call, a hash-ordered iteration, an unjustified panic path,
//! an unaudited cast, or drops a crate's unsafe gate, without waiting
//! for CI.

use std::path::Path;

use irgrid_lint::{find_workspace_root, run, EngineConfig};

fn workspace_root() -> std::path::PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(manifest).expect("crates/lint lives inside the workspace")
}

#[test]
fn workspace_is_lint_clean() {
    let report = run(&workspace_root(), &EngineConfig::default()).expect("scan workspace");
    assert!(
        report.is_clean(),
        "irgrid-lint found violations:\n{}",
        report.render(irgrid_lint::Format::Human)
    );
}

#[test]
fn workspace_scan_covers_every_first_party_crate() {
    let report = run(&workspace_root(), &EngineConfig::default()).expect("scan workspace");
    // The workspace has eight first-party crates plus this one; a scan
    // that suddenly sees far fewer files means the walker broke and the
    // clean result above is vacuous.
    assert!(
        report.scanned_files >= 90,
        "only {} files scanned",
        report.scanned_files
    );
}

#[test]
fn every_library_crate_root_forbids_unsafe() {
    // Belt and braces for U1: assert directly against the real crate
    // roots, independent of rule scoping.
    let root = workspace_root();
    let crates = std::fs::read_dir(root.join("crates")).expect("crates dir");
    let mut checked = 0;
    for entry in crates.filter_map(Result::ok) {
        let lib = entry.path().join("src").join("lib.rs");
        if !lib.is_file() {
            continue;
        }
        let source = std::fs::read_to_string(&lib).expect("readable crate root");
        let squashed: String = source.chars().filter(|c| !c.is_whitespace()).collect();
        assert!(
            squashed.contains("#![forbid(unsafe_code)]"),
            "{} is missing #![forbid(unsafe_code)]",
            lib.display()
        );
        checked += 1;
    }
    assert!(checked >= 8, "only {checked} crate roots found");
}
