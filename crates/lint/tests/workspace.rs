//! The tier-1 gate: the full-workspace lint run must be clean.
//!
//! This is the test that turns the lint from a CI convenience into a
//! local invariant — `cargo test` fails the moment a PR introduces a
//! wall-clock call, a hash-ordered iteration, an unjustified panic path,
//! an unaudited cast, or drops a crate's unsafe gate, without waiting
//! for CI.

use std::path::Path;

use irgrid_lint::{find_workspace_root, run, EngineConfig};

fn workspace_root() -> std::path::PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(manifest).expect("crates/lint lives inside the workspace")
}

#[test]
fn workspace_is_lint_clean() {
    let report = run(&workspace_root(), &EngineConfig::default()).expect("scan workspace");
    assert!(
        report.is_clean(),
        "irgrid-lint found violations:\n{}",
        report.render(irgrid_lint::Format::Human)
    );
}

/// Counts `crates/*/src/**/*.rs` independently of the engine's walker.
fn count_first_party_sources(root: &Path) -> usize {
    let mut count = 0;
    let crates = std::fs::read_dir(root.join("crates")).expect("crates dir");
    for entry in crates.filter_map(Result::ok) {
        let src = entry.path().join("src");
        if !src.is_dir() {
            continue;
        }
        let mut stack = vec![src];
        while let Some(dir) = stack.pop() {
            for child in std::fs::read_dir(&dir)
                .expect("readable dir")
                .filter_map(Result::ok)
            {
                let path = child.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|ext| ext == "rs") {
                    count += 1;
                }
            }
        }
    }
    count
}

#[test]
fn workspace_scan_covers_every_first_party_source_file() {
    let root = workspace_root();
    let report = run(&root, &EngineConfig::default()).expect("scan workspace");

    // The engine must scan exactly what an independent walk finds — a
    // scan that sees fewer files means the walker broke and the clean
    // result above is vacuous.
    let expected = count_first_party_sources(&root);
    assert_eq!(
        report.scanned_files, expected,
        "engine scanned {} files but the workspace holds {}",
        report.scanned_files, expected
    );

    // The scan surface only ever grows. The checked-in high-water mark
    // replaces the old hand-bumped `>= N` floor: deleting source files
    // fails here until the removal is argued for (and the mark lowered
    // in the same PR), and growth fails until the mark records it.
    let hwm_path = root.join("crates/lint/tests/scanned_files.hwm");
    let hwm: usize = std::fs::read_to_string(&hwm_path)
        .expect("crates/lint/tests/scanned_files.hwm exists")
        .trim()
        .parse()
        .expect("high-water mark is a number");
    assert!(
        expected >= hwm,
        "workspace shrank: {expected} source files scanned, high-water mark is {hwm}"
    );
    assert_eq!(
        expected, hwm,
        "scan now covers {expected} files; record it in crates/lint/tests/scanned_files.hwm"
    );
}

#[test]
fn suppression_debt_is_within_the_ceiling() {
    let report = run(&workspace_root(), &EngineConfig::default()).expect("scan workspace");
    assert!(
        report.debt_total <= irgrid_lint::DEBT_CEILING,
        "suppression debt {} exceeds the ceiling {}: fix findings instead of allowing them, \
         or argue for a higher ceiling in the PR",
        report.debt_total,
        irgrid_lint::DEBT_CEILING
    );
    assert!(
        report.debt_total > 0,
        "zero live allows would mean the liveness audit itself broke"
    );
}

#[test]
fn every_library_crate_root_forbids_unsafe() {
    // Belt and braces for U1: assert directly against the real crate
    // roots, independent of rule scoping.
    let root = workspace_root();
    let crates = std::fs::read_dir(root.join("crates")).expect("crates dir");
    let mut checked = 0;
    for entry in crates.filter_map(Result::ok) {
        let lib = entry.path().join("src").join("lib.rs");
        if !lib.is_file() {
            continue;
        }
        let source = std::fs::read_to_string(&lib).expect("readable crate root");
        let squashed: String = source.chars().filter(|c| !c.is_whitespace()).collect();
        assert!(
            squashed.contains("#![forbid(unsafe_code)]"),
            "{} is missing #![forbid(unsafe_code)]",
            lib.display()
        );
        checked += 1;
    }
    assert!(checked >= 8, "only {checked} crate roots found");
}
