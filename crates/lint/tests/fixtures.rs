//! The fixture corpus: every rule ID has a known-bad snippet it must
//! catch and a known-good counterpart (compliant or allow-annotated) it
//! must pass.

use std::path::{Path, PathBuf};

use irgrid_lint::{check_source, run, EngineConfig, RuleConfig};

fn fixture_root(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(which)
}

fn check_fixture(which: &str, rel_path: &str, config: &RuleConfig) -> Vec<irgrid_lint::Finding> {
    let path = fixture_root(which).join(rel_path);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    check_source(rel_path, &source, config)
}

/// (rule, fixture file, minimum findings the bad variant must produce)
const PAIRS: &[(&str, &str, usize)] = &[
    ("D1", "crates/core/src/d1.rs", 3),
    ("D2", "crates/core/src/d2.rs", 4),
    ("P1", "crates/route/src/p1.rs", 5),
    ("C1", "crates/core/src/num/c1.rs", 3),
    ("U1", "crates/core/src/lib.rs", 1),
    ("S1", "crates/serve/src/s1.rs", 4),
    ("S2", "crates/serve/src/s2.rs", 1),
    ("S3", "crates/serve/src/protocol.rs", 3),
    ("S4", "crates/core/src/s4.rs", 3),
    ("S5", "crates/core/src/s5.rs", 1),
];

#[test]
fn every_rule_catches_its_bad_fixture() {
    let config = RuleConfig::default();
    for &(rule, rel, min) in PAIRS {
        let findings = check_fixture("bad", rel, &config);
        let hits = findings.iter().filter(|f| f.rule == rule).count();
        assert!(
            hits >= min,
            "{rule}: expected >= {min} findings in bad/{rel}, got {hits}: {findings:?}"
        );
    }
}

#[test]
fn every_rule_passes_its_good_fixture() {
    let config = RuleConfig::default();
    for &(rule, rel, _) in PAIRS {
        let findings = check_fixture("good", rel, &config);
        assert!(
            findings.is_empty(),
            "{rule}: good/{rel} should be clean, got {findings:?}"
        );
    }
}

#[test]
fn bad_fixture_corpus_fails_as_a_whole_workspace() {
    let report = run(&fixture_root("bad"), &EngineConfig::default()).expect("scan bad corpus");
    assert!(!report.is_clean());
    for rule in [
        "D1", "D2", "P1", "C1", "U1", "A1", "S1", "S2", "S3", "S4", "S5",
    ] {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "bad corpus should trip {rule}: {:?}",
            report.findings
        );
    }
}

#[test]
fn good_fixture_corpus_passes_as_a_whole_workspace() {
    let report = run(&fixture_root("good"), &EngineConfig::default()).expect("scan good corpus");
    assert!(
        report.is_clean(),
        "good corpus should be clean, got {:?}",
        report.findings
    );
    assert!(report.scanned_files >= 5);
}

#[test]
fn malformed_allow_reports_a1_and_still_reports_the_violation() {
    let findings = check_fixture("bad", "crates/core/src/a1.rs", &RuleConfig::default());
    assert!(findings.iter().any(|f| f.rule == "A1"));
    assert!(
        findings.iter().any(|f| f.rule == "D2"),
        "a reason-less allow must not suppress: {findings:?}"
    );
}

#[test]
fn strict_indexing_flags_the_p1_fixture_index_expression() {
    let default_hits = check_fixture("bad", "crates/route/src/p1.rs", &RuleConfig::default());
    let strict = RuleConfig {
        strict_indexing: true,
        ..RuleConfig::default()
    };
    let strict_hits = check_fixture("bad", "crates/route/src/p1.rs", &strict);
    assert!(
        strict_hits.len() > default_hits.len(),
        "strict mode should add indexing findings"
    );
    assert!(strict_hits
        .iter()
        .any(|f| f.rule == "P1" && f.message.contains("indexing")));
}

#[test]
fn rules_selection_composes_with_the_new_families() {
    // A single v2 family alone: only its findings (plus A1, which is
    // never filtered) survive the selection.
    let only_s4 = EngineConfig {
        rules: RuleConfig {
            rules: vec!["S4".to_owned()],
            ..RuleConfig::default()
        },
        ..EngineConfig::default()
    };
    let report = run(&fixture_root("bad"), &only_s4).expect("scan bad corpus");
    assert!(report.findings.iter().any(|f| f.rule == "S4"));
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.rule == "S4" || f.rule == "A1"),
        "--rules S4 leaked other rules: {:?}",
        report.findings
    );

    // A v1 family paired with a v2 family: both report, nothing else.
    let mixed = EngineConfig {
        rules: RuleConfig {
            rules: vec!["P1".to_owned(), "S1".to_owned()],
            ..RuleConfig::default()
        },
        ..EngineConfig::default()
    };
    let report = run(&fixture_root("bad"), &mixed).expect("scan bad corpus");
    assert!(report.findings.iter().any(|f| f.rule == "P1"));
    assert!(report.findings.iter().any(|f| f.rule == "S1"));
    assert!(report
        .findings
        .iter()
        .all(|f| ["P1", "S1", "A1"].contains(&f.rule.as_str())));

    // Selection filters *reporting*, not staleness: a `--rules D1` run
    // still knows the S5 fixture's allow is stale (it just doesn't
    // report it), so the live-allow ledger stays consistent.
    let only_d1 = EngineConfig {
        rules: RuleConfig {
            rules: vec!["D1".to_owned()],
            ..RuleConfig::default()
        },
        ..EngineConfig::default()
    };
    let report = run(&fixture_root("good"), &only_d1).expect("scan good corpus");
    assert!(
        report.is_clean(),
        "good corpus under --rules D1: {:?}",
        report.findings
    );
    assert!(
        report.debt_total >= 1,
        "the good corpus's live allows must still be counted as debt"
    );
}

#[test]
fn dead_registry_sites_are_cross_file_findings() {
    let report = run(&fixture_root("bad"), &EngineConfig::default()).expect("scan bad corpus");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "S2" && f.message.contains("registry.dead-site")),
        "registered-but-never-consulted site must be flagged: {:?}",
        report.findings
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "S2" && f.message.contains("persist.sessoin")),
        "typo'd consult site must be flagged against the registry"
    );
}

#[test]
fn test_code_in_fixtures_is_exempt() {
    let findings = check_fixture("bad", "crates/route/src/p1.rs", &RuleConfig::default());
    // The `#[cfg(test)]` module at the bottom of the fixture unwraps
    // freely; no finding may point past the module's opening line.
    let source = std::fs::read_to_string(fixture_root("bad").join("crates/route/src/p1.rs"))
        .expect("fixture readable");
    let test_mod_line = source
        .lines()
        .position(|l| l.contains("#[cfg(test)]"))
        .expect("fixture has a test module")
        + 1;
    assert!(findings.iter().all(|f| f.line < test_mod_line));
}
