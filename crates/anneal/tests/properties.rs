//! Property-based tests of the annealing engine's contracts.

use irgrid_anneal::{Annealer, Problem, Schedule};
use proptest::prelude::*;
use rand::Rng;

/// A rugged 1-D landscape parameterized by test inputs.
struct Rugged {
    offset: i64,
    ripple: f64,
}

impl Problem for Rugged {
    type State = i64;
    fn initial_state(&self) -> i64 {
        500
    }
    fn cost(&self, s: &i64) -> f64 {
        let d = (s - self.offset) as f64;
        d * d + self.ripple * (d / 3.0).sin() * 50.0
    }
    fn perturb<R: Rng>(&self, s: &mut i64, rng: &mut R) {
        *s += rng.gen_range(-7..=7);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn best_cost_never_exceeds_initial(offset in -200i64..200, ripple in 0.0f64..2.0, seed in 0u64..500) {
        let problem = Rugged { offset, ripple };
        let result = Annealer::new(Schedule::quick()).run(&problem, seed);
        prop_assert!(result.best_cost <= problem.cost(&problem.initial_state()) + 1e-9);
        // The reported best state matches the reported best cost.
        prop_assert!((problem.cost(&result.best) - result.best_cost).abs() < 1e-9);
    }

    #[test]
    fn runs_are_reproducible(offset in -200i64..200, seed in 0u64..500) {
        let problem = Rugged { offset, ripple: 1.0 };
        let annealer = Annealer::new(Schedule::quick());
        let a = annealer.run(&problem, seed);
        let b = annealer.run(&problem, seed);
        prop_assert_eq!(a.best, b.best);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.snapshots.len(), b.snapshots.len());
    }

    #[test]
    fn stats_bookkeeping_consistent(seed in 0u64..200) {
        let schedule = Schedule {
            snapshot_per_temperature: true,
            ..Schedule::quick()
        };
        let problem = Rugged { offset: 40, ripple: 0.5 };
        let result = Annealer::new(schedule).run(&problem, seed);
        let proposed = result.stats.accepted + result.stats.rejected;
        prop_assert_eq!(proposed, result.stats.temperatures * schedule.moves_per_temperature);
        prop_assert_eq!(result.snapshots.len(), result.stats.temperatures);
        // Temperatures strictly decrease along the snapshot log.
        for pair in result.snapshots.windows(2) {
            prop_assert!(pair[1].temperature < pair[0].temperature);
            prop_assert!(pair[1].best_cost <= pair[0].best_cost);
            // Current cost is never below the best-so-far.
            prop_assert!(pair[1].current_cost >= pair[1].best_cost - 1e-9);
        }
    }

    #[test]
    fn temperature_bounds_respected(seed in 0u64..100) {
        let problem = Rugged { offset: 0, ripple: 1.5 };
        let schedule = Schedule::quick();
        let result = Annealer::new(schedule).run(&problem, seed);
        prop_assert!(result.stats.temperatures <= schedule.max_temperatures);
        prop_assert!(result.stats.final_temperature <= result.stats.initial_temperature);
        prop_assert!(result.stats.initial_temperature > 0.0);
    }
}
