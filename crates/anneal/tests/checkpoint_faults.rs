//! Checkpoint resume under injected IO errors: a write failure
//! mid-checkpoint must leave the previously committed checkpoint valid
//! and the run resumable — bit-identically — from it.

use irgrid_anneal::{Annealer, Checkpoint, Problem, RunControl, Schedule};
use rand::Rng;

/// A rugged 1-D landscape (same shape as the property-test problem).
struct Rugged {
    offset: i64,
}

impl Problem for Rugged {
    type State = i64;
    fn initial_state(&self) -> i64 {
        500
    }
    fn cost(&self, s: &i64) -> f64 {
        let d = (s - self.offset) as f64;
        d * d + (d / 3.0).sin() * 50.0
    }
    fn perturb<R: Rng>(&self, s: &mut i64, rng: &mut R) {
        *s += rng.gen_range(-7..=7);
    }
}

#[test]
fn write_failure_mid_checkpoint_leaves_previous_checkpoint_valid_and_resumable() {
    let dir = std::env::temp_dir().join("irgrid_anneal_checkpoint_fault_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("run.ckpt.json");
    let tmp = path.with_extension("tmp");

    let problem = Rugged { offset: 37 };
    let annealer = Annealer::new(Schedule::quick());
    let control = RunControl::unlimited().with_checkpoint_every(2);

    let reference = annealer
        .run_with_checkpoints(&problem, 11, &control, |_| {})
        .expect("reference run");

    // Chaotic run: the first two checkpoints commit normally; then a
    // directory squats on the sibling tmp path, so every later
    // checkpoint write fails mid-write (`File::create` on the tmp).
    let mut writes = 0u32;
    let mut failures = 0u32;
    let mut last_committed_step = 0usize;
    let result = annealer
        .run_with_checkpoints(&problem, 11, &control, |checkpoint| {
            writes += 1;
            if writes == 3 {
                std::fs::create_dir_all(&tmp).expect("squat the tmp path");
            }
            match checkpoint.write_file(&path) {
                Ok(()) => last_committed_step = checkpoint.steps_done,
                Err(_) => failures += 1,
            }
        })
        .expect("chaotic run");
    assert!(writes >= 3, "schedule too short to exercise the fault");
    assert!(failures > 0, "fault injection never fired");

    // Failed checkpoint writes never perturb the run itself.
    assert_eq!(result.best, reference.best);
    assert_eq!(result.best_cost.to_bits(), reference.best_cost.to_bits());

    // The last successfully committed checkpoint is fully intact: the
    // torn write died in `File::create(tmp)`, before any rename could
    // clobber the committed file.
    let checkpoint: Checkpoint<i64> =
        Checkpoint::read_file(&path).expect("previous checkpoint still valid");
    assert_eq!(checkpoint.steps_done, last_committed_step);
    assert!(checkpoint.steps_done > 0);

    // Resuming from it reproduces the uninterrupted run bit for bit.
    let resumed = annealer
        .resume(&problem, checkpoint, &control)
        .expect("resume");
    assert_eq!(resumed.best, reference.best);
    assert_eq!(resumed.best_cost.to_bits(), reference.best_cost.to_bits());
    assert_eq!(resumed.stats, reference.stats);

    let _ = std::fs::remove_dir_all(&dir);
}
