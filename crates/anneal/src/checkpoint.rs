//! Serializable annealing checkpoints.
//!
//! A [`Checkpoint`] captures the complete engine state at a
//! temperature-step boundary — current and best states with their costs,
//! the cooling position, run statistics, accumulated snapshots, and the
//! exact RNG state. Feeding it back through
//! [`Annealer::resume`](crate::Annealer::resume) continues the run
//! **bit-identically**: the resumed run produces the same best state,
//! cost, and statistics as an uninterrupted run with the same
//! `(problem, seed)`.
//!
//! # Format stability
//!
//! Checkpoints are plain JSON with a `version` field, currently
//! [`FORMAT_VERSION`]. They are portable across processes and machines
//! but only within the same library version lineage: resuming validates
//! the version and the schedule and refuses mismatches rather than
//! silently diverging. Checkpoints are *not* a long-term archival format.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::engine::{AnnealStats, TemperatureSnapshot};
use crate::Schedule;

/// The checkpoint format version this library writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Complete engine state at a temperature-step boundary.
///
/// Produced by
/// [`Annealer::run_with_checkpoints`](crate::Annealer::run_with_checkpoints)
/// on the cadence set by
/// [`RunControl::with_checkpoint_every`](crate::RunControl::with_checkpoint_every);
/// consumed by [`Annealer::resume`](crate::Annealer::resume).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint<S> {
    /// Checkpoint format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// The seed the run started from.
    pub seed: u64,
    /// The schedule the run was started with. Resume validates this
    /// against the resuming annealer's schedule.
    pub schedule: Schedule,
    /// The adaptive initial temperature (resume must not re-estimate it).
    pub initial_temperature: f64,
    /// The temperature the *next* step will run at.
    pub temperature: f64,
    /// Completed temperature steps (equals `stats.temperatures`).
    pub steps_done: usize,
    /// The walker's current state.
    pub current: S,
    /// Cost of [`current`](Checkpoint::current).
    pub current_cost: f64,
    /// Best state seen so far.
    pub best: S,
    /// Cost of [`best`](Checkpoint::best).
    pub best_cost: f64,
    /// Statistics accumulated so far.
    pub stats: AnnealStats,
    /// Per-temperature snapshots accumulated so far (empty unless the
    /// schedule enables them).
    pub snapshots: Vec<TemperatureSnapshot<S>>,
    /// The exact RNG state at the boundary.
    pub rng: ChaCha8Rng,
}

impl<S: Serialize> Checkpoint<S> {
    /// Serializes to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        // irgrid-lint: allow(P1): serializing a plain owned data struct cannot fail
        serde_json::to_string_pretty(self).expect("checkpoint serialization is infallible")
    }

    /// Atomically writes the checkpoint to `path`: the JSON is written to
    /// a sibling temporary file and renamed into place, so a crash
    /// mid-write never leaves a truncated checkpoint behind.
    pub fn write_file(&self, path: &Path) -> Result<(), CheckpointIoError> {
        let tmp = path.with_extension("tmp");
        let io = |source| CheckpointIoError::Io {
            path: tmp.display().to_string(),
            source,
        };
        {
            let mut file = fs::File::create(&tmp).map_err(io)?;
            file.write_all(self.to_json().as_bytes()).map_err(io)?;
            file.sync_all().map_err(io)?;
        }
        fs::rename(&tmp, path).map_err(|source| CheckpointIoError::Io {
            path: path.display().to_string(),
            source,
        })
    }
}

impl<S: Deserialize> Checkpoint<S> {
    /// Parses a checkpoint from JSON text.
    pub fn from_json(text: &str) -> Result<Self, CheckpointIoError> {
        serde_json::from_str(text).map_err(|err| CheckpointIoError::Parse(err.to_string()))
    }

    /// Reads a checkpoint from a file written by
    /// [`write_file`](Checkpoint::write_file).
    pub fn read_file(path: &Path) -> Result<Self, CheckpointIoError> {
        let text = fs::read_to_string(path).map_err(|source| CheckpointIoError::Io {
            path: path.display().to_string(),
            source,
        })?;
        Self::from_json(&text)
    }
}

/// Error reading or writing a checkpoint file.
#[derive(Debug)]
pub enum CheckpointIoError {
    /// Filesystem failure.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file's contents did not parse as a checkpoint.
    Parse(String),
}

impl fmt::Display for CheckpointIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointIoError::Io { path, source } => {
                write!(f, "checkpoint i/o failed for `{path}`: {source}")
            }
            CheckpointIoError::Parse(why) => write!(f, "checkpoint did not parse: {why}"),
        }
    }
}

impl std::error::Error for CheckpointIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointIoError::Io { source, .. } => Some(source),
            CheckpointIoError::Parse(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_checkpoint() -> Checkpoint<i64> {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Advance mid-block so serialization must capture intra-block
        // position too.
        for _ in 0..13 {
            use rand::RngCore;
            rng.next_u32();
        }
        Checkpoint {
            version: FORMAT_VERSION,
            seed: 7,
            schedule: Schedule::quick(),
            initial_temperature: 123.456,
            temperature: 45.6,
            steps_done: 11,
            current: -3,
            current_cost: 99.5,
            best: 4,
            best_cost: 12.25,
            stats: AnnealStats {
                temperatures: 11,
                accepted: 420,
                rejected: 240,
                initial_temperature: 123.456,
                final_temperature: 45.6,
            },
            snapshots: vec![],
            rng,
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let checkpoint = sample_checkpoint();
        let text = checkpoint.to_json();
        let back: Checkpoint<i64> = Checkpoint::from_json(&text).expect("parse");
        assert_eq!(checkpoint, back);
    }

    #[test]
    fn rng_stream_survives_roundtrip() {
        let checkpoint = sample_checkpoint();
        let back: Checkpoint<i64> = Checkpoint::from_json(&checkpoint.to_json()).expect("parse");
        let mut original = checkpoint.rng;
        let mut restored = back.rng;
        use rand::RngCore;
        for _ in 0..100 {
            assert_eq!(original.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn file_roundtrip_and_atomic_write() {
        let dir = std::env::temp_dir().join("irgrid_checkpoint_test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ckpt.json");
        let checkpoint = sample_checkpoint();
        checkpoint.write_file(&path).expect("write");
        // The temporary staging file must not linger.
        assert!(!path.with_extension("tmp").exists());
        let back: Checkpoint<i64> = Checkpoint::read_file(&path).expect("read");
        assert_eq!(checkpoint, back);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let err = Checkpoint::<i64>::from_json("{ not json").unwrap_err();
        assert!(matches!(err, CheckpointIoError::Parse(_)));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Checkpoint::<i64>::read_file(Path::new("/nonexistent/ckpt.json")).unwrap_err();
        assert!(matches!(err, CheckpointIoError::Io { .. }));
    }
}
