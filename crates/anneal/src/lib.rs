//! A seeded simulated-annealing engine.
//!
//! The DATE 2004 paper's floorplanner is "based on simulated annealing
//! algorithm with normalized Polish expression" (§5). This crate provides
//! the annealing half: a generic engine with the classic geometric cooling
//! schedule, an adaptive initial temperature derived from the average
//! uphill move (Wong–Liu style), and — crucially for the paper's
//! Experiment 2 — a per-temperature snapshot log of the locally optimized
//! intermediate solutions.
//!
//! # Examples
//!
//! Annealing a toy one-dimensional problem:
//!
//! ```
//! use irgrid_anneal::{Annealer, Problem, Schedule};
//! use rand::Rng;
//!
//! struct Parabola;
//!
//! impl Problem for Parabola {
//!     type State = f64;
//!     fn initial_state(&self) -> f64 {
//!         100.0
//!     }
//!     fn cost(&self, s: &f64) -> f64 {
//!         (s - 3.0) * (s - 3.0)
//!     }
//!     fn perturb<R: Rng>(&self, s: &mut f64, rng: &mut R) {
//!         *s += rng.gen_range(-1.0..1.0);
//!     }
//! }
//!
//! let result = Annealer::new(Schedule::default()).run(&Parabola, 42);
//! assert!((result.best - 3.0).abs() < 1.0);
//! ```
//!
//! # Fault tolerance
//!
//! Long runs can be made interruptible and restartable:
//!
//! * [`Annealer::run_controlled`] accepts a [`RunControl`] carrying a
//!   wall-clock deadline, a [`CancelToken`], and/or a total-move budget;
//!   the partial result reports *why* it stopped via [`StopReason`].
//! * [`Annealer::run_with_checkpoints`] additionally emits a serializable
//!   [`Checkpoint`] on a configurable cadence, and [`Annealer::resume`]
//!   continues from one **bit-identically** — same best state, cost, and
//!   statistics as the uninterrupted run.
//! * Non-finite costs are surfaced as typed [`AnnealError`]s (at startup)
//!   or a graceful [`StopReason::CostError`] (mid-run) instead of
//!   corrupting the best state.
//!
//! # Incremental evaluation
//!
//! Problems that can re-evaluate cost in O(changed components) per move
//! implement [`DeltaProblem`] and run through [`Annealer::run_delta`]
//! (and its controlled/checkpointed/resumed variants). The delta loop
//! consumes the same RNG stream as the full-cost loop, so for a
//! contract-conforming problem the two produce bit-identical results;
//! [`FullCostDelta`] adapts any [`Problem`] to the delta protocol by
//! falling back to full-cost evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod control;
mod engine;
mod schedule;

pub use checkpoint::{Checkpoint, CheckpointIoError, FORMAT_VERSION};
pub use control::{AnnealError, CancelToken, RunControl, StopReason};
pub use engine::{
    AnnealResult, AnnealStats, Annealer, DeltaProblem, FullCostDelta, Problem, TemperatureSnapshot,
};
pub use schedule::{Schedule, ScheduleError};
