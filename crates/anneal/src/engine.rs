//! The annealing engine.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{Checkpoint, FORMAT_VERSION};
use crate::control::{AnnealError, RunControl, StopReason};
use crate::Schedule;

/// A problem the annealer can optimize: a state space with a cost function
/// and a random perturbation.
///
/// Implementations must be deterministic given the RNG: the engine is
/// seeded, and the paper's protocol ("every test case is performed 20 times
/// using different random number generator seeds") relies on run-to-run
/// reproducibility per seed.
pub trait Problem {
    /// A candidate solution. Cloned when a new best is found and for
    /// per-temperature snapshots.
    type State: Clone;

    /// The starting state.
    fn initial_state(&self) -> Self::State;

    /// The cost to minimize. Must be finite for every reachable state.
    /// The engine guards against violations: a non-finite initial cost is
    /// a typed [`AnnealError`], and a non-finite cost mid-run stops the
    /// run with [`StopReason::CostError`] while preserving the best
    /// finite-cost state.
    fn cost(&self, state: &Self::State) -> f64;

    /// Randomly perturbs `state` in place.
    fn perturb<R: Rng>(&self, state: &mut Self::State, rng: &mut R);
}

/// Opt-in incremental move evaluation: a [`Problem`] whose cost can be
/// updated in O(changed components) per move instead of recomputed from
/// scratch, driven by the engine's delta loop
/// ([`Annealer::run_delta`] and friends).
///
/// # Move protocol
///
/// The engine calls [`rebase`](DeltaProblem::rebase) once on the initial
/// state, then per move exactly one
/// [`propose`](DeltaProblem::propose) followed by either
/// [`commit`](DeltaProblem::commit) (move accepted) or
/// [`undo`](DeltaProblem::undo) (move rejected). `propose` perturbs the
/// state *in place* — there is no candidate clone — and `undo` must
/// restore it exactly. `propose` draws from the RNG exactly as
/// [`Problem::perturb`] would, so delta and full-cost loops consume
/// identical RNG streams.
///
/// # Cost contract
///
/// For any state reachable by the protocol, `propose`'s return value
/// must be **bit-identical** to what `rebase` would return for the
/// perturbed state on a freshly rebased problem — incremental bookkeeping
/// may not drift, not even in the last ulp (use integer/fixed-point
/// accumulation for order-dependent sums). The delta cost may be a
/// *different* (deterministic) quantity than [`Problem::cost`] — e.g.
/// quantized congestion instead of float congestion; the engine never
/// mixes the two inside one run's move loop.
///
/// Every method takes `&self`: like [`Problem::cost`], implementations
/// keep mutable evaluation state behind interior mutability.
pub trait DeltaProblem: Problem {
    /// Installs `state` as the committed state of the incremental
    /// evaluation and returns its cost under the delta cost function.
    /// The default forwards to [`Problem::cost`], so a `DeltaProblem`
    /// built purely from `propose`/`undo` keeps the full-cost semantics.
    fn rebase(&self, state: &Self::State) -> f64 {
        self.cost(state)
    }

    /// Perturbs `state` in place (drawing from `rng` exactly like
    /// [`Problem::perturb`]) and returns the perturbed state's cost,
    /// evaluated incrementally against the committed state.
    fn propose<R: Rng>(&self, state: &mut Self::State, rng: &mut R) -> f64;

    /// Accepts the pending proposal: the perturbed state becomes the
    /// committed state. Default: no-op (for adapters with no retained
    /// evaluation state).
    fn commit(&self) {}

    /// Rejects the pending proposal: restores `state` (and any retained
    /// evaluation state) to the committed state.
    fn undo(&self, state: &mut Self::State);
}

/// The universal [`DeltaProblem`] adapter: wraps any [`Problem`], with
/// `propose` = clone + perturb + full [`Problem::cost`] and `undo` =
/// restore the clone. No incremental speedup — this is the "default impl
/// = full cost" escape hatch that lets any existing problem run on the
/// delta loop unchanged. [`Annealer::run_delta`] on `FullCostDelta<P>`
/// is bit-identical to [`Annealer::run`] on `P` (tested below).
#[derive(Debug)]
pub struct FullCostDelta<P: Problem> {
    inner: P,
    saved: std::cell::RefCell<Option<P::State>>,
}

impl<P: Problem> FullCostDelta<P> {
    /// Wraps a problem for the delta loop.
    pub fn new(inner: P) -> FullCostDelta<P> {
        FullCostDelta {
            inner,
            saved: std::cell::RefCell::new(None),
        }
    }

    /// The wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Problem> Problem for FullCostDelta<P> {
    type State = P::State;

    fn initial_state(&self) -> P::State {
        self.inner.initial_state()
    }

    fn cost(&self, state: &P::State) -> f64 {
        self.inner.cost(state)
    }

    fn perturb<R: Rng>(&self, state: &mut P::State, rng: &mut R) {
        self.inner.perturb(state, rng);
    }
}

impl<P: Problem> DeltaProblem for FullCostDelta<P> {
    fn propose<R: Rng>(&self, state: &mut P::State, rng: &mut R) -> f64 {
        *self.saved.borrow_mut() = Some(state.clone());
        self.inner.perturb(state, rng);
        self.inner.cost(state)
    }

    fn undo(&self, state: &mut P::State) {
        if let Some(previous) = self.saved.borrow_mut().take() {
            *state = previous;
        }
    }
}

/// Statistics of one annealing run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealStats {
    /// Temperature steps executed.
    pub temperatures: usize,
    /// Moves accepted (including improving moves).
    pub accepted: usize,
    /// Moves rejected.
    pub rejected: usize,
    /// The adaptive initial temperature used.
    pub initial_temperature: f64,
    /// The final temperature reached.
    pub final_temperature: f64,
}

impl AnnealStats {
    /// Fraction of proposed moves that were accepted.
    #[must_use]
    pub fn acceptance_ratio(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

/// The locally optimized solution at the end of one temperature step —
/// what the paper's Experiment 2 extracts "at each temperature-dropping
/// step".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureSnapshot<S> {
    /// The temperature at which the step ran.
    pub temperature: f64,
    /// The *current* state at the end of the step — the locally
    /// optimized intermediate solution the paper extracts.
    pub current_state: S,
    /// The current state's cost.
    pub current_cost: f64,
    /// Best-so-far state at the end of the step.
    pub best_state: S,
    /// Best-so-far cost at the end of the step.
    pub best_cost: f64,
    /// Acceptance ratio within the step.
    pub acceptance_ratio: f64,
}

/// The outcome of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult<S> {
    /// The best state encountered.
    pub best: S,
    /// Its cost.
    pub best_cost: f64,
    /// Run statistics.
    pub stats: AnnealStats,
    /// Per-temperature snapshots (empty unless
    /// [`Schedule::snapshot_per_temperature`] is set).
    pub snapshots: Vec<TemperatureSnapshot<S>>,
    /// Why the run stopped.
    pub stop_reason: StopReason,
}

/// Mutable engine state between temperature steps — everything a
/// [`Checkpoint`] captures and a resume restores.
struct LoopState<S> {
    rng: ChaCha8Rng,
    current: S,
    current_cost: f64,
    best: S,
    best_cost: f64,
    temperature: f64,
    initial_temperature: f64,
    steps_done: usize,
    stats: AnnealStats,
    snapshots: Vec<TemperatureSnapshot<S>>,
}

/// A configured annealer. Stateless apart from the schedule; `run` may be
/// called many times with different seeds.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone, Copy)]
pub struct Annealer {
    schedule: Schedule,
}

impl Annealer {
    /// Creates an annealer with the given schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule parameters are out of range
    /// (see [`Schedule::validate`]). Use [`Annealer::try_new`] for a
    /// recoverable error instead.
    #[must_use]
    pub fn new(schedule: Schedule) -> Annealer {
        schedule.validate();
        Annealer { schedule }
    }

    /// Creates an annealer, returning a typed error if the schedule
    /// parameters are out of range.
    pub fn try_new(schedule: Schedule) -> Result<Annealer, crate::ScheduleError> {
        schedule.validated()?;
        Ok(Annealer { schedule })
    }

    /// The schedule in use.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Runs one seeded annealing optimization.
    ///
    /// Identical `(problem, seed)` pairs produce identical results.
    ///
    /// # Panics
    ///
    /// Panics if the initial state's cost is non-finite (a violated
    /// [`Problem::cost`] contract). Use [`Annealer::run_controlled`] to
    /// get a typed [`AnnealError`] instead.
    pub fn run<P: Problem>(&self, problem: &P, seed: u64) -> AnnealResult<P::State> {
        match self.run_controlled(problem, seed, &RunControl::unlimited()) {
            Ok(result) => result,
            // irgrid-lint: allow(P1): documented panicking wrapper; run_controlled is the typed path
            Err(err) => panic!("annealing run failed: {err}"),
        }
    }

    /// Runs one seeded annealing optimization under [`RunControl`] limits
    /// (deadline, cancellation, move budget).
    ///
    /// With [`RunControl::unlimited`] this is exactly [`Annealer::run`].
    /// When a limit trips, the partial result — best state so far and
    /// exact statistics — is returned with the corresponding
    /// [`StopReason`].
    pub fn run_controlled<P: Problem>(
        &self,
        problem: &P,
        seed: u64,
        control: &RunControl,
    ) -> Result<AnnealResult<P::State>, AnnealError> {
        self.run_with_checkpoints(problem, seed, control, |_| {})
    }

    /// Like [`Annealer::run_controlled`], additionally emitting a
    /// [`Checkpoint`] to `sink` every
    /// [`RunControl::with_checkpoint_every`] completed temperature steps.
    ///
    /// Checkpoints are only emitted at temperature-step boundaries, so
    /// every emitted checkpoint resumes bit-identically. A run
    /// interrupted *mid*-step resumes from the last emitted boundary
    /// checkpoint, replaying at most one cadence interval of work.
    pub fn run_with_checkpoints<P, F>(
        &self,
        problem: &P,
        seed: u64,
        control: &RunControl,
        mut sink: F,
    ) -> Result<AnnealResult<P::State>, AnnealError>
    where
        P: Problem,
        F: FnMut(&Checkpoint<P::State>),
    {
        self.schedule.validated()?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let current = problem.initial_state();
        let current_cost = problem.cost(&current);
        if !current_cost.is_finite() {
            return Err(AnnealError::NonFiniteInitialCost { cost: current_cost });
        }

        let initial_temperature = self.estimate_initial_temperature(problem, &mut rng)?;
        let state = LoopState {
            rng,
            best: current.clone(),
            best_cost: current_cost,
            current,
            current_cost,
            temperature: initial_temperature,
            initial_temperature,
            steps_done: 0,
            stats: AnnealStats {
                initial_temperature,
                final_temperature: initial_temperature,
                ..AnnealStats::default()
            },
            snapshots: Vec::new(),
        };
        Ok(self.run_loop(problem, seed, state, control, &mut sink))
    }

    /// Resumes a run from a [`Checkpoint`], continuing under `control`.
    ///
    /// Resuming is **bit-identical**: a run checkpointed at any
    /// temperature-step boundary and resumed produces exactly the same
    /// best state, cost, statistics, and snapshots as the same
    /// `(problem, seed)` run uninterrupted. The checkpoint's format
    /// version and schedule are validated first; mismatches are typed
    /// errors, never silent divergence.
    pub fn resume<P: Problem>(
        &self,
        problem: &P,
        checkpoint: Checkpoint<P::State>,
        control: &RunControl,
    ) -> Result<AnnealResult<P::State>, AnnealError> {
        self.resume_with_checkpoints(problem, checkpoint, control, |_| {})
    }

    /// Like [`Annealer::resume`], additionally emitting checkpoints on
    /// the control's cadence (counted from step 0 of the original run,
    /// so cadence positions match the uninterrupted run's).
    pub fn resume_with_checkpoints<P, F>(
        &self,
        problem: &P,
        checkpoint: Checkpoint<P::State>,
        control: &RunControl,
        mut sink: F,
    ) -> Result<AnnealResult<P::State>, AnnealError>
    where
        P: Problem,
        F: FnMut(&Checkpoint<P::State>),
    {
        let (seed, state) = self.validated_checkpoint_state(checkpoint)?;
        Ok(self.run_loop(problem, seed, state, control, &mut sink))
    }

    /// Validates a checkpoint (format version, schedule, finiteness,
    /// internal consistency) and converts it into a resumable
    /// [`LoopState`] — shared by the full-cost and delta resume paths so
    /// the two cannot drift.
    fn validated_checkpoint_state<S>(
        &self,
        checkpoint: Checkpoint<S>,
    ) -> Result<(u64, LoopState<S>), AnnealError> {
        if checkpoint.version != FORMAT_VERSION {
            return Err(AnnealError::CheckpointVersion {
                found: checkpoint.version,
                expected: FORMAT_VERSION,
            });
        }
        self.schedule.validated()?;
        if checkpoint.schedule != self.schedule {
            return Err(AnnealError::ScheduleMismatch);
        }
        if !(checkpoint.initial_temperature.is_finite() && checkpoint.initial_temperature > 0.0) {
            return Err(AnnealError::CorruptCheckpoint {
                field: "initial_temperature",
            });
        }
        if !(checkpoint.temperature.is_finite() && checkpoint.temperature > 0.0) {
            return Err(AnnealError::CorruptCheckpoint {
                field: "temperature",
            });
        }
        if !checkpoint.current_cost.is_finite() {
            return Err(AnnealError::CorruptCheckpoint {
                field: "current_cost",
            });
        }
        if !checkpoint.best_cost.is_finite() {
            return Err(AnnealError::CorruptCheckpoint { field: "best_cost" });
        }
        if checkpoint.steps_done != checkpoint.stats.temperatures {
            return Err(AnnealError::CorruptCheckpoint {
                field: "steps_done",
            });
        }

        let seed = checkpoint.seed;
        let state = LoopState {
            rng: checkpoint.rng,
            current: checkpoint.current,
            current_cost: checkpoint.current_cost,
            best: checkpoint.best,
            best_cost: checkpoint.best_cost,
            temperature: checkpoint.temperature,
            initial_temperature: checkpoint.initial_temperature,
            steps_done: checkpoint.steps_done,
            stats: checkpoint.stats,
            snapshots: checkpoint.snapshots,
        };
        Ok((seed, state))
    }

    /// Runs one seeded annealing optimization through the incremental
    /// [`DeltaProblem`] move protocol.
    ///
    /// For a problem whose delta costs are bit-identical to its full
    /// costs (the [`DeltaProblem`] contract), this produces exactly the
    /// same result as [`Annealer::run`] — same best state, cost,
    /// statistics, and snapshots — while paying only the incremental
    /// evaluation cost per move.
    ///
    /// # Panics
    ///
    /// Panics if the initial rebased cost is non-finite (a violated
    /// [`DeltaProblem::rebase`] contract). Use
    /// [`Annealer::run_controlled_delta`] for a typed [`AnnealError`]
    /// instead.
    pub fn run_delta<P: DeltaProblem>(&self, problem: &P, seed: u64) -> AnnealResult<P::State> {
        match self.run_controlled_delta(problem, seed, &RunControl::unlimited()) {
            Ok(result) => result,
            // irgrid-lint: allow(P1): documented panicking wrapper; run_controlled_delta is the typed path
            Err(err) => panic!("delta annealing run failed: {err}"),
        }
    }

    /// Like [`Annealer::run_controlled`], but through the incremental
    /// [`DeltaProblem`] move protocol.
    pub fn run_controlled_delta<P: DeltaProblem>(
        &self,
        problem: &P,
        seed: u64,
        control: &RunControl,
    ) -> Result<AnnealResult<P::State>, AnnealError> {
        self.run_with_checkpoints_delta(problem, seed, control, |_| {})
    }

    /// Like [`Annealer::run_with_checkpoints`], but through the
    /// incremental [`DeltaProblem`] move protocol. Checkpoints carry only
    /// the state (never the problem's retained session), so a checkpoint
    /// written by this path resumes identically through either
    /// [`Annealer::resume`] or [`Annealer::resume_delta`].
    pub fn run_with_checkpoints_delta<P, F>(
        &self,
        problem: &P,
        seed: u64,
        control: &RunControl,
        mut sink: F,
    ) -> Result<AnnealResult<P::State>, AnnealError>
    where
        P: DeltaProblem,
        F: FnMut(&Checkpoint<P::State>),
    {
        self.schedule.validated()?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let current = problem.initial_state();
        let current_cost = problem.rebase(&current);
        if !current_cost.is_finite() {
            return Err(AnnealError::NonFiniteInitialCost { cost: current_cost });
        }

        let initial_temperature = self.estimate_initial_temperature(problem, &mut rng)?;
        // Temperature estimation random-walks a scratch state through the
        // full-cost path; re-anchor the retained session on the actual
        // starting state before the move loop begins.
        let current_cost = problem.rebase(&current);
        if !current_cost.is_finite() {
            return Err(AnnealError::NonFiniteInitialCost { cost: current_cost });
        }
        let state = LoopState {
            rng,
            best: current.clone(),
            best_cost: current_cost,
            current,
            current_cost,
            temperature: initial_temperature,
            initial_temperature,
            steps_done: 0,
            stats: AnnealStats {
                initial_temperature,
                final_temperature: initial_temperature,
                ..AnnealStats::default()
            },
            snapshots: Vec::new(),
        };
        Ok(self.run_loop_delta(problem, seed, state, control, &mut sink))
    }

    /// Resumes a checkpointed run through the incremental
    /// [`DeltaProblem`] move protocol.
    ///
    /// The problem's retained session is re-anchored on the checkpoint's
    /// current state via [`DeltaProblem::rebase`]; for a
    /// contract-conforming problem the rebased cost equals the
    /// checkpoint's recorded `current_cost`, so resuming here is
    /// bit-identical to resuming through [`Annealer::resume`].
    pub fn resume_delta<P: DeltaProblem>(
        &self,
        problem: &P,
        checkpoint: Checkpoint<P::State>,
        control: &RunControl,
    ) -> Result<AnnealResult<P::State>, AnnealError> {
        self.resume_with_checkpoints_delta(problem, checkpoint, control, |_| {})
    }

    /// Like [`Annealer::resume_delta`], additionally emitting checkpoints
    /// on the control's cadence.
    pub fn resume_with_checkpoints_delta<P, F>(
        &self,
        problem: &P,
        checkpoint: Checkpoint<P::State>,
        control: &RunControl,
        mut sink: F,
    ) -> Result<AnnealResult<P::State>, AnnealError>
    where
        P: DeltaProblem,
        F: FnMut(&Checkpoint<P::State>),
    {
        let (seed, mut state) = self.validated_checkpoint_state(checkpoint)?;
        let rebased = problem.rebase(&state.current);
        if !rebased.is_finite() {
            return Err(AnnealError::NonFiniteInitialCost { cost: rebased });
        }
        state.current_cost = rebased;
        Ok(self.run_loop_delta(problem, seed, state, control, &mut sink))
    }

    /// The shared temperature loop. `state` is either a fresh start or a
    /// restored checkpoint; both paths execute identical move sequences
    /// for identical RNG states, which is what makes resume bit-identical.
    fn run_loop<P: Problem>(
        &self,
        problem: &P,
        seed: u64,
        mut st: LoopState<P::State>,
        control: &RunControl,
        sink: &mut dyn FnMut(&Checkpoint<P::State>),
    ) -> AnnealResult<P::State> {
        /// How many moves run between deadline/cancellation polls.
        /// Polling is cheap but not free; a power of two keeps the check
        /// branch-predictable.
        const POLL_INTERVAL: usize = 64;

        let min_temperature = st.initial_temperature * self.schedule.min_temperature_ratio;
        let mut moves_done = (st.stats.accepted + st.stats.rejected) as u64;

        let stop_reason = 'outer: loop {
            if st.steps_done >= self.schedule.max_temperatures {
                break StopReason::MaxTemperatures;
            }
            if st.temperature < min_temperature {
                break StopReason::Converged;
            }
            if control.step_budget_hit(st.steps_done) {
                // The budget lands exactly on a step boundary, so the
                // state here is checkpointable; emit it so a supervisor
                // can continue the run segment-by-segment without
                // configuring a cadence.
                sink(&boundary_checkpoint(self.schedule, seed, &st));
                break StopReason::StepBudget;
            }
            if control.cancel_hit() {
                break StopReason::Cancelled;
            }
            if control.deadline_hit() {
                break StopReason::Deadline;
            }

            let mut step_accepted = 0usize;
            for move_index in 0..self.schedule.moves_per_temperature {
                if control.budget_hit(moves_done) {
                    break 'outer StopReason::MoveBudget;
                }
                if move_index % POLL_INTERVAL == POLL_INTERVAL - 1 {
                    if control.cancel_hit() {
                        break 'outer StopReason::Cancelled;
                    }
                    if control.deadline_hit() {
                        break 'outer StopReason::Deadline;
                    }
                }

                let mut candidate = st.current.clone();
                problem.perturb(&mut candidate, &mut st.rng);
                let candidate_cost = problem.cost(&candidate);
                if !candidate_cost.is_finite() {
                    // The candidate is poisoned; the best finite-cost
                    // state found so far is preserved and returned.
                    break 'outer StopReason::CostError;
                }
                moves_done += 1;
                let delta = candidate_cost - st.current_cost;
                let accept = delta <= 0.0 || st.rng.gen::<f64>() < (-delta / st.temperature).exp();
                if accept {
                    st.current = candidate;
                    st.current_cost = candidate_cost;
                    step_accepted += 1;
                    st.stats.accepted += 1;
                    if st.current_cost < st.best_cost {
                        st.best = st.current.clone();
                        st.best_cost = st.current_cost;
                    }
                } else {
                    st.stats.rejected += 1;
                }
            }

            st.stats.temperatures += 1;
            st.steps_done += 1;
            st.stats.final_temperature = st.temperature;
            if self.schedule.snapshot_per_temperature {
                st.snapshots.push(TemperatureSnapshot {
                    temperature: st.temperature,
                    current_state: st.current.clone(),
                    current_cost: st.current_cost,
                    best_state: st.best.clone(),
                    best_cost: st.best_cost,
                    acceptance_ratio: step_accepted as f64
                        / self.schedule.moves_per_temperature as f64,
                });
            }
            // Frozen: a full step with no accepted move cannot thaw at a
            // lower temperature.
            if step_accepted == 0 {
                break StopReason::Frozen;
            }
            st.temperature *= self.schedule.cooling;

            if let Some(every) = control.checkpoint_every {
                if st.steps_done % every == 0 {
                    sink(&boundary_checkpoint(self.schedule, seed, &st));
                }
            }
        };

        AnnealResult {
            best: st.best,
            best_cost: st.best_cost,
            stats: st.stats,
            snapshots: st.snapshots,
            stop_reason,
        }
    }

    /// The incremental counterpart of [`Annealer::run_loop`]: identical
    /// control flow, stop reasons, statistics, and RNG consumption, with
    /// the clone-perturb-cost move replaced by the
    /// [`DeltaProblem`] propose/commit/undo protocol.
    ///
    /// The two loops are deliberately line-for-line parallel: any edit to
    /// one must be mirrored in the other, or delta runs stop being
    /// bit-identical to full-cost runs.
    fn run_loop_delta<P: DeltaProblem>(
        &self,
        problem: &P,
        seed: u64,
        mut st: LoopState<P::State>,
        control: &RunControl,
        sink: &mut dyn FnMut(&Checkpoint<P::State>),
    ) -> AnnealResult<P::State> {
        /// Mirrors [`Annealer::run_loop`]'s poll cadence exactly.
        const POLL_INTERVAL: usize = 64;

        let min_temperature = st.initial_temperature * self.schedule.min_temperature_ratio;
        let mut moves_done = (st.stats.accepted + st.stats.rejected) as u64;

        let stop_reason = 'outer: loop {
            if st.steps_done >= self.schedule.max_temperatures {
                break StopReason::MaxTemperatures;
            }
            if st.temperature < min_temperature {
                break StopReason::Converged;
            }
            if control.step_budget_hit(st.steps_done) {
                sink(&boundary_checkpoint(self.schedule, seed, &st));
                break StopReason::StepBudget;
            }
            if control.cancel_hit() {
                break StopReason::Cancelled;
            }
            if control.deadline_hit() {
                break StopReason::Deadline;
            }

            let mut step_accepted = 0usize;
            for move_index in 0..self.schedule.moves_per_temperature {
                if control.budget_hit(moves_done) {
                    break 'outer StopReason::MoveBudget;
                }
                if move_index % POLL_INTERVAL == POLL_INTERVAL - 1 {
                    if control.cancel_hit() {
                        break 'outer StopReason::Cancelled;
                    }
                    if control.deadline_hit() {
                        break 'outer StopReason::Deadline;
                    }
                }

                let candidate_cost = problem.propose(&mut st.current, &mut st.rng);
                if !candidate_cost.is_finite() {
                    // Roll the state back so `best`/`current` invariants
                    // hold in the returned partial result, then stop as
                    // the full-cost loop does.
                    problem.undo(&mut st.current);
                    break 'outer StopReason::CostError;
                }
                moves_done += 1;
                let delta = candidate_cost - st.current_cost;
                let accept = delta <= 0.0 || st.rng.gen::<f64>() < (-delta / st.temperature).exp();
                if accept {
                    problem.commit();
                    st.current_cost = candidate_cost;
                    step_accepted += 1;
                    st.stats.accepted += 1;
                    if st.current_cost < st.best_cost {
                        st.best = st.current.clone();
                        st.best_cost = st.current_cost;
                    }
                } else {
                    problem.undo(&mut st.current);
                    st.stats.rejected += 1;
                }
            }

            st.stats.temperatures += 1;
            st.steps_done += 1;
            st.stats.final_temperature = st.temperature;
            if self.schedule.snapshot_per_temperature {
                st.snapshots.push(TemperatureSnapshot {
                    temperature: st.temperature,
                    current_state: st.current.clone(),
                    current_cost: st.current_cost,
                    best_state: st.best.clone(),
                    best_cost: st.best_cost,
                    acceptance_ratio: step_accepted as f64
                        / self.schedule.moves_per_temperature as f64,
                });
            }
            if step_accepted == 0 {
                break StopReason::Frozen;
            }
            st.temperature *= self.schedule.cooling;

            if let Some(every) = control.checkpoint_every {
                if st.steps_done % every == 0 {
                    sink(&boundary_checkpoint(self.schedule, seed, &st));
                }
            }
        };

        AnnealResult {
            best: st.best,
            best_cost: st.best_cost,
            stats: st.stats,
            snapshots: st.snapshots,
            stop_reason,
        }
    }

    /// Samples random moves from the initial state and sets T₀ so the
    /// average uphill move is accepted with the configured probability:
    /// `T₀ = Δ̄⁺ / ln(1 / p₀)`.
    fn estimate_initial_temperature<P: Problem>(
        &self,
        problem: &P,
        rng: &mut ChaCha8Rng,
    ) -> Result<f64, AnnealError> {
        const SAMPLES: usize = 64;
        let mut state = problem.initial_state();
        let mut cost = problem.cost(&state);
        let mut uphill_sum = 0.0;
        let mut uphill_count = 0usize;
        for _ in 0..SAMPLES {
            let mut candidate = state.clone();
            problem.perturb(&mut candidate, rng);
            let candidate_cost = problem.cost(&candidate);
            if !candidate_cost.is_finite() {
                return Err(AnnealError::NonFiniteEstimationCost {
                    cost: candidate_cost,
                });
            }
            let delta = candidate_cost - cost;
            if delta > 0.0 {
                uphill_sum += delta;
                uphill_count += 1;
            }
            // Random-walk to sample the neighbourhood, not just the
            // initial state's immediate neighbours.
            state = candidate;
            cost = candidate_cost;
        }
        let temperature = if uphill_count == 0 {
            // Flat or monotonically improving landscape: any small positive
            // temperature works; scale to the cost magnitude.
            (cost.abs() * 0.01).max(1e-9)
        } else {
            let avg_uphill = uphill_sum / uphill_count as f64;
            avg_uphill / (1.0 / self.schedule.initial_acceptance).ln()
        };
        if !(temperature.is_finite() && temperature > 0.0) {
            return Err(AnnealError::InvalidInitialTemperature { temperature });
        }
        Ok(temperature)
    }
}

/// The complete engine state at the current temperature-step boundary,
/// as a resumable [`Checkpoint`]. Used for both cadence emissions and the
/// final emission when a step budget trips — one constructor, so the two
/// cannot drift.
fn boundary_checkpoint<S: Clone>(
    schedule: Schedule,
    seed: u64,
    st: &LoopState<S>,
) -> Checkpoint<S> {
    Checkpoint {
        version: FORMAT_VERSION,
        seed,
        schedule,
        initial_temperature: st.initial_temperature,
        temperature: st.temperature,
        steps_done: st.steps_done,
        current: st.current.clone(),
        current_cost: st.current_cost,
        best: st.best.clone(),
        best_cost: st.best_cost,
        stats: st.stats,
        snapshots: st.snapshots.clone(),
        rng: st.rng.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CancelToken;
    use std::time::Duration;

    /// Discrete quadratic bowl over integers.
    struct Bowl;

    impl Problem for Bowl {
        type State = i64;
        fn initial_state(&self) -> i64 {
            1000
        }
        fn cost(&self, s: &i64) -> f64 {
            ((s - 7) * (s - 7)) as f64
        }
        fn perturb<R: Rng>(&self, s: &mut i64, rng: &mut R) {
            *s += rng.gen_range(-10..=10);
        }
    }

    #[test]
    fn finds_bowl_minimum() {
        let result = Annealer::new(Schedule::default()).run(&Bowl, 1);
        assert!(
            (result.best - 7).abs() <= 2,
            "best {} should be near 7",
            result.best
        );
        assert!(result.best_cost <= 4.0);
        assert!(result.stop_reason.is_natural());
    }

    #[test]
    fn deterministic_per_seed() {
        let annealer = Annealer::new(Schedule::quick());
        let a = annealer.run(&Bowl, 99);
        let b = annealer.run(&Bowl, 99);
        assert_eq!(a.best, b.best);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.stop_reason, b.stop_reason);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let annealer = Annealer::new(Schedule::quick());
        let a = annealer.run(&Bowl, 1);
        let b = annealer.run(&Bowl, 2);
        // Both should be good, but the trajectories differ.
        assert_ne!(
            (a.stats.accepted, a.stats.rejected),
            (b.stats.accepted, b.stats.rejected)
        );
    }

    #[test]
    fn snapshots_recorded_when_enabled() {
        let schedule = Schedule {
            snapshot_per_temperature: true,
            ..Schedule::quick()
        };
        let result = Annealer::new(schedule).run(&Bowl, 5);
        assert_eq!(result.snapshots.len(), result.stats.temperatures);
        // Best cost is non-increasing across snapshots.
        for pair in result.snapshots.windows(2) {
            assert!(pair[1].best_cost <= pair[0].best_cost);
            assert!(pair[1].temperature < pair[0].temperature);
        }
    }

    #[test]
    fn no_snapshots_by_default() {
        let result = Annealer::new(Schedule::quick()).run(&Bowl, 5);
        assert!(result.snapshots.is_empty());
    }

    #[test]
    fn stats_are_consistent() {
        let schedule = Schedule::quick();
        let result = Annealer::new(schedule).run(&Bowl, 3);
        let proposed = result.stats.accepted + result.stats.rejected;
        assert_eq!(
            proposed,
            result.stats.temperatures * schedule.moves_per_temperature
        );
        assert!(result.stats.initial_temperature > 0.0);
        assert!(result.stats.final_temperature <= result.stats.initial_temperature);
        let ratio = result.stats.acceptance_ratio();
        assert!((0.0..=1.0).contains(&ratio));
    }

    /// A flat landscape: every state costs the same.
    struct Flat;

    impl Problem for Flat {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn cost(&self, _: &u8) -> f64 {
            5.0
        }
        fn perturb<R: Rng>(&self, s: &mut u8, rng: &mut R) {
            *s = rng.gen();
        }
    }

    #[test]
    fn flat_landscape_terminates() {
        let result = Annealer::new(Schedule::quick()).run(&Flat, 0);
        assert_eq!(result.best_cost, 5.0);
        assert!(result.stats.temperatures > 0);
    }

    #[test]
    fn best_never_worse_than_initial() {
        let annealer = Annealer::new(Schedule::quick());
        for seed in 0..10 {
            let result = annealer.run(&Bowl, seed);
            assert!(result.best_cost <= Bowl.cost(&Bowl.initial_state()));
        }
    }

    #[test]
    #[should_panic(expected = "cooling")]
    fn annealer_rejects_invalid_schedule() {
        let _ = Annealer::new(Schedule {
            cooling: 0.0,
            ..Schedule::default()
        });
    }

    #[test]
    fn try_new_returns_typed_error() {
        let err = Annealer::try_new(Schedule {
            cooling: 0.0,
            ..Schedule::default()
        })
        .unwrap_err();
        assert_eq!(err, crate::ScheduleError::Cooling(0.0));
        assert!(Annealer::try_new(Schedule::default()).is_ok());
    }

    #[test]
    fn unlimited_control_matches_plain_run() {
        let annealer = Annealer::new(Schedule::quick());
        let plain = annealer.run(&Bowl, 17);
        let controlled = annealer
            .run_controlled(&Bowl, 17, &RunControl::unlimited())
            .expect("no limits, finite costs");
        assert_eq!(plain.best, controlled.best);
        assert_eq!(plain.best_cost, controlled.best_cost);
        assert_eq!(plain.stats, controlled.stats);
        assert_eq!(plain.stop_reason, controlled.stop_reason);
    }

    #[test]
    fn move_budget_stops_exactly() {
        let annealer = Annealer::new(Schedule::quick());
        let result = annealer
            .run_controlled(&Bowl, 3, &RunControl::unlimited().with_move_budget(100))
            .expect("finite costs");
        assert_eq!(result.stop_reason, StopReason::MoveBudget);
        assert_eq!(result.stats.accepted + result.stats.rejected, 100);
    }

    #[test]
    fn zero_move_budget_returns_initial_state() {
        let annealer = Annealer::new(Schedule::quick());
        let result = annealer
            .run_controlled(&Bowl, 3, &RunControl::unlimited().with_move_budget(0))
            .expect("finite costs");
        assert_eq!(result.stop_reason, StopReason::MoveBudget);
        assert_eq!(result.best, Bowl.initial_state());
        assert_eq!(result.stats.accepted + result.stats.rejected, 0);
    }

    #[test]
    fn step_budget_stops_exactly_at_boundary_with_checkpoint() {
        let annealer = Annealer::new(Schedule::quick());
        let mut checkpoints = Vec::new();
        let result = annealer
            .run_with_checkpoints(
                &Bowl,
                3,
                &RunControl::unlimited().with_step_budget(7),
                |c| checkpoints.push(c.clone()),
            )
            .expect("finite costs");
        assert_eq!(result.stop_reason, StopReason::StepBudget);
        assert_eq!(result.stats.temperatures, 7);
        // Exactly one checkpoint: the final boundary (no cadence set).
        assert_eq!(checkpoints.len(), 1);
        assert_eq!(checkpoints[0].steps_done, 7);
    }

    #[test]
    fn segmented_run_is_bit_identical_to_uninterrupted() {
        let annealer = Annealer::new(Schedule::quick());
        let uninterrupted = annealer.run(&Bowl, 42);

        // Drive the same run 4 steps at a time through step budgets,
        // resuming each segment from the previous boundary checkpoint.
        let mut checkpoint = None;
        let mut result = annealer
            .run_with_checkpoints(
                &Bowl,
                42,
                &RunControl::unlimited().with_step_budget(4),
                |c| checkpoint = Some(c.clone()),
            )
            .expect("finite costs");
        let mut budget = 4;
        while result.stop_reason == StopReason::StepBudget {
            budget += 4;
            let from = checkpoint.take().expect("budget stop emits a checkpoint");
            result = annealer
                .resume_with_checkpoints(
                    &Bowl,
                    from,
                    &RunControl::unlimited().with_step_budget(budget),
                    |c| checkpoint = Some(c.clone()),
                )
                .expect("valid checkpoint");
        }
        assert_eq!(result.best, uninterrupted.best);
        assert_eq!(result.best_cost, uninterrupted.best_cost);
        assert_eq!(result.stats, uninterrupted.stats);
        assert_eq!(result.stop_reason, uninterrupted.stop_reason);
    }

    #[test]
    fn exhausted_step_budget_on_resume_reemits_the_boundary() {
        let annealer = Annealer::new(Schedule::quick());
        let mut checkpoint = None;
        annealer
            .run_with_checkpoints(
                &Bowl,
                5,
                &RunControl::unlimited().with_step_budget(3),
                |c| checkpoint = Some(c.clone()),
            )
            .expect("finite costs");
        let from = checkpoint.clone().expect("one checkpoint");
        // Resuming with the budget already met runs zero steps and hands
        // the same boundary back.
        let mut reemitted = None;
        let result = annealer
            .resume_with_checkpoints(
                &Bowl,
                from.clone(),
                &RunControl::unlimited().with_step_budget(3),
                |c| reemitted = Some(c.clone()),
            )
            .expect("valid checkpoint");
        assert_eq!(result.stop_reason, StopReason::StepBudget);
        assert_eq!(result.stats.temperatures, 3);
        assert_eq!(reemitted.expect("boundary re-emitted"), from);
    }

    #[test]
    fn cancellation_stops_the_run() {
        let annealer = Annealer::new(Schedule::quick());
        let token = CancelToken::new();
        token.cancel();
        let result = annealer
            .run_controlled(&Bowl, 3, &RunControl::unlimited().with_cancel_token(token))
            .expect("finite costs");
        assert_eq!(result.stop_reason, StopReason::Cancelled);
        // Cancelled before any step completed.
        assert_eq!(result.stats.temperatures, 0);
    }

    #[test]
    fn expired_deadline_stops_before_first_step() {
        let annealer = Annealer::new(Schedule::quick());
        let result = annealer
            .run_controlled(
                &Bowl,
                3,
                &RunControl::unlimited().with_time_limit(Duration::ZERO),
            )
            .expect("finite costs");
        assert_eq!(result.stop_reason, StopReason::Deadline);
        assert_eq!(result.stats.temperatures, 0);
        // The partial result is still well-formed.
        assert!(result.best_cost.is_finite());
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let schedule = Schedule {
            snapshot_per_temperature: true,
            ..Schedule::quick()
        };
        let annealer = Annealer::new(schedule);
        let uninterrupted = annealer.run(&Bowl, 42);

        // Capture checkpoints every 5 steps, then resume from each and
        // check the tail reproduces the uninterrupted run exactly.
        let mut checkpoints = Vec::new();
        let control = RunControl::unlimited().with_checkpoint_every(5);
        let checkpointed = annealer
            .run_with_checkpoints(&Bowl, 42, &control, |c| checkpoints.push(c.clone()))
            .expect("finite costs");
        assert_eq!(checkpointed.best, uninterrupted.best);
        assert_eq!(checkpointed.stats, uninterrupted.stats);
        assert!(!checkpoints.is_empty(), "run too short to checkpoint");

        for checkpoint in checkpoints {
            let resumed = annealer
                .resume(&Bowl, checkpoint, &RunControl::unlimited())
                .expect("valid checkpoint");
            assert_eq!(resumed.best, uninterrupted.best);
            assert_eq!(resumed.best_cost, uninterrupted.best_cost);
            assert_eq!(resumed.stats, uninterrupted.stats);
            assert_eq!(resumed.snapshots.len(), uninterrupted.snapshots.len());
            assert_eq!(resumed.stop_reason, uninterrupted.stop_reason);
        }
    }

    #[test]
    fn checkpoint_survives_json_and_still_resumes_identically() {
        let annealer = Annealer::new(Schedule::quick());
        let uninterrupted = annealer.run(&Bowl, 7);

        let mut last = None;
        let control = RunControl::unlimited().with_checkpoint_every(3);
        annealer
            .run_with_checkpoints(&Bowl, 7, &control, |c| last = Some(c.to_json()))
            .expect("finite costs");
        let json = last.expect("at least one checkpoint");
        let restored: Checkpoint<i64> = Checkpoint::from_json(&json).expect("parse");
        let resumed = annealer
            .resume(&Bowl, restored, &RunControl::unlimited())
            .expect("valid checkpoint");
        assert_eq!(resumed.best, uninterrupted.best);
        assert_eq!(resumed.stats, uninterrupted.stats);
    }

    #[test]
    fn resume_rejects_schedule_mismatch() {
        let annealer = Annealer::new(Schedule::quick());
        let mut checkpoint = None;
        let control = RunControl::unlimited().with_checkpoint_every(1);
        annealer
            .run_with_checkpoints(&Bowl, 1, &control, |c| {
                if checkpoint.is_none() {
                    checkpoint = Some(c.clone());
                }
            })
            .expect("finite costs");
        let checkpoint = checkpoint.expect("one checkpoint");

        let other = Annealer::new(Schedule::default());
        let err = other
            .resume(&Bowl, checkpoint, &RunControl::unlimited())
            .unwrap_err();
        assert_eq!(err, AnnealError::ScheduleMismatch);
    }

    #[test]
    fn resume_rejects_wrong_version_and_corruption() {
        let annealer = Annealer::new(Schedule::quick());
        let mut captured = None;
        let control = RunControl::unlimited().with_checkpoint_every(1);
        annealer
            .run_with_checkpoints(&Bowl, 1, &control, |c| {
                if captured.is_none() {
                    captured = Some(c.clone());
                }
            })
            .expect("finite costs");
        let checkpoint = captured.expect("one checkpoint");

        let mut wrong_version = checkpoint.clone();
        wrong_version.version = 999;
        assert!(matches!(
            annealer
                .resume(&Bowl, wrong_version, &RunControl::unlimited())
                .unwrap_err(),
            AnnealError::CheckpointVersion { found: 999, .. }
        ));

        let mut poisoned = checkpoint.clone();
        poisoned.best_cost = f64::NAN;
        assert!(matches!(
            annealer
                .resume(&Bowl, poisoned, &RunControl::unlimited())
                .unwrap_err(),
            AnnealError::CorruptCheckpoint { field: "best_cost" }
        ));

        let mut inconsistent = checkpoint;
        inconsistent.steps_done += 1;
        assert!(matches!(
            annealer
                .resume(&Bowl, inconsistent, &RunControl::unlimited())
                .unwrap_err(),
            AnnealError::CorruptCheckpoint {
                field: "steps_done"
            }
        ));
    }

    /// A problem whose cost turns NaN once the state crosses a threshold.
    struct PoisonedSlope;

    impl Problem for PoisonedSlope {
        type State = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn cost(&self, s: &i64) -> f64 {
            // The threshold sits beyond the estimation walk's maximum
            // reach (64 steps × 3), so only the main loop can hit it.
            if *s > 200 {
                f64::NAN
            } else {
                // Downhill toward larger values, luring the walker into
                // the poisoned region.
                (1000 - s) as f64
            }
        }
        fn perturb<R: Rng>(&self, s: &mut i64, rng: &mut R) {
            *s += rng.gen_range(0..=3);
        }
    }

    #[test]
    fn nan_cost_mid_run_stops_gracefully() {
        let annealer = Annealer::new(Schedule::quick());
        let result = annealer
            .run_controlled(&PoisonedSlope, 1, &RunControl::unlimited())
            .expect("initial cost is finite");
        assert_eq!(result.stop_reason, StopReason::CostError);
        // The best state is the last finite-cost one, never poisoned.
        assert!(result.best <= 200);
        assert!(result.best_cost.is_finite());
    }

    /// A problem whose cost is NaN from the start.
    struct AlwaysNan;

    impl Problem for AlwaysNan {
        type State = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn cost(&self, _: &i64) -> f64 {
            f64::NAN
        }
        fn perturb<R: Rng>(&self, s: &mut i64, rng: &mut R) {
            *s += rng.gen_range(-1..=1);
        }
    }

    #[test]
    fn nan_initial_cost_is_a_typed_error() {
        let annealer = Annealer::new(Schedule::quick());
        let err = annealer
            .run_controlled(&AlwaysNan, 1, &RunControl::unlimited())
            .unwrap_err();
        assert!(matches!(err, AnnealError::NonFiniteInitialCost { .. }));
    }

    #[test]
    #[should_panic(expected = "annealing run failed")]
    fn plain_run_panics_on_nan_initial_cost() {
        let _ = Annealer::new(Schedule::quick()).run(&AlwaysNan, 1);
    }

    /// Finite initial cost, NaN only during the estimation walk.
    struct PoisonedNeighbourhood;

    impl Problem for PoisonedNeighbourhood {
        type State = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn cost(&self, s: &i64) -> f64 {
            if *s == 0 {
                1.0
            } else {
                f64::NAN
            }
        }
        fn perturb<R: Rng>(&self, s: &mut i64, rng: &mut R) {
            *s += rng.gen_range(1..=2);
        }
    }

    #[test]
    fn nan_during_estimation_is_a_typed_error() {
        let annealer = Annealer::new(Schedule::quick());
        let err = annealer
            .run_controlled(&PoisonedNeighbourhood, 1, &RunControl::unlimited())
            .unwrap_err();
        assert!(matches!(err, AnnealError::NonFiniteEstimationCost { .. }));
    }

    #[test]
    fn delta_loop_is_bit_identical_to_full_cost_loop() {
        let annealer = Annealer::new(Schedule::quick());
        let wrapped = FullCostDelta::new(Bowl);
        for seed in [0, 1, 7, 42, 99] {
            let plain = annealer.run(&Bowl, seed);
            let delta = annealer.run_delta(&wrapped, seed);
            assert_eq!(plain.best, delta.best, "seed {seed}");
            assert_eq!(plain.best_cost.to_bits(), delta.best_cost.to_bits());
            assert_eq!(plain.stats, delta.stats);
            assert_eq!(plain.stop_reason, delta.stop_reason);
        }
    }

    #[test]
    fn delta_loop_matches_full_cost_snapshots() {
        let schedule = Schedule {
            snapshot_per_temperature: true,
            ..Schedule::quick()
        };
        let annealer = Annealer::new(schedule);
        let plain = annealer.run(&Bowl, 5);
        let delta = annealer.run_delta(&FullCostDelta::new(Bowl), 5);
        assert_eq!(plain.snapshots.len(), delta.snapshots.len());
        for (a, b) in plain.snapshots.iter().zip(&delta.snapshots) {
            assert_eq!(a.temperature.to_bits(), b.temperature.to_bits());
            assert_eq!(a.current_state, b.current_state);
            assert_eq!(a.current_cost.to_bits(), b.current_cost.to_bits());
            assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
        }
    }

    #[test]
    fn delta_segmented_resume_is_bit_identical() {
        let annealer = Annealer::new(Schedule::quick());
        let uninterrupted = annealer.run(&Bowl, 42);
        let wrapped = FullCostDelta::new(Bowl);

        let mut checkpoint = None;
        let mut result = annealer
            .run_with_checkpoints_delta(
                &wrapped,
                42,
                &RunControl::unlimited().with_step_budget(4),
                |c| checkpoint = Some(c.clone()),
            )
            .expect("finite costs");
        let mut budget = 4;
        while result.stop_reason == StopReason::StepBudget {
            budget += 4;
            let from = checkpoint.take().expect("budget stop emits a checkpoint");
            result = annealer
                .resume_with_checkpoints_delta(
                    &wrapped,
                    from,
                    &RunControl::unlimited().with_step_budget(budget),
                    |c| checkpoint = Some(c.clone()),
                )
                .expect("valid checkpoint");
        }
        assert_eq!(result.best, uninterrupted.best);
        assert_eq!(
            result.best_cost.to_bits(),
            uninterrupted.best_cost.to_bits()
        );
        assert_eq!(result.stats, uninterrupted.stats);
        assert_eq!(result.stop_reason, uninterrupted.stop_reason);
    }

    #[test]
    fn delta_checkpoint_resumes_through_full_cost_path() {
        // A checkpoint written by the delta loop carries no session state,
        // so the full-cost resume path continues it bit-identically.
        let annealer = Annealer::new(Schedule::quick());
        let uninterrupted = annealer.run(&Bowl, 13);
        let mut checkpoint = None;
        annealer
            .run_with_checkpoints_delta(
                &FullCostDelta::new(Bowl),
                13,
                &RunControl::unlimited().with_step_budget(6),
                |c| checkpoint = Some(c.clone()),
            )
            .expect("finite costs");
        let resumed = annealer
            .resume(
                &Bowl,
                checkpoint.expect("budget stop emits a checkpoint"),
                &RunControl::unlimited(),
            )
            .expect("valid checkpoint");
        assert_eq!(resumed.best, uninterrupted.best);
        assert_eq!(resumed.stats, uninterrupted.stats);
        assert_eq!(resumed.stop_reason, uninterrupted.stop_reason);
    }

    #[test]
    fn delta_move_budget_stops_exactly() {
        let annealer = Annealer::new(Schedule::quick());
        let result = annealer
            .run_controlled_delta(
                &FullCostDelta::new(Bowl),
                3,
                &RunControl::unlimited().with_move_budget(100),
            )
            .expect("finite costs");
        assert_eq!(result.stop_reason, StopReason::MoveBudget);
        assert_eq!(result.stats.accepted + result.stats.rejected, 100);
    }

    #[test]
    fn delta_nan_mid_run_undoes_and_stops_gracefully() {
        let annealer = Annealer::new(Schedule::quick());
        let result = annealer
            .run_controlled_delta(
                &FullCostDelta::new(PoisonedSlope),
                1,
                &RunControl::unlimited(),
            )
            .expect("initial cost is finite");
        assert_eq!(result.stop_reason, StopReason::CostError);
        assert!(result.best <= 200);
        assert!(result.best_cost.is_finite());
    }

    #[test]
    #[should_panic(expected = "delta annealing run failed")]
    fn plain_delta_run_panics_on_nan_initial_cost() {
        let _ = Annealer::new(Schedule::quick()).run_delta(&FullCostDelta::new(AlwaysNan), 1);
    }

    /// Counts protocol calls to verify every propose is paired with
    /// exactly one commit or undo.
    struct CountingDelta {
        inner: FullCostDelta<Bowl>,
        rebases: std::cell::Cell<usize>,
        proposes: std::cell::Cell<usize>,
        commits: std::cell::Cell<usize>,
        undos: std::cell::Cell<usize>,
    }

    impl CountingDelta {
        fn new() -> CountingDelta {
            CountingDelta {
                inner: FullCostDelta::new(Bowl),
                rebases: std::cell::Cell::new(0),
                proposes: std::cell::Cell::new(0),
                commits: std::cell::Cell::new(0),
                undos: std::cell::Cell::new(0),
            }
        }
    }

    impl Problem for CountingDelta {
        type State = i64;
        fn initial_state(&self) -> i64 {
            self.inner.initial_state()
        }
        fn cost(&self, s: &i64) -> f64 {
            self.inner.cost(s)
        }
        fn perturb<R: Rng>(&self, s: &mut i64, rng: &mut R) {
            self.inner.perturb(s, rng);
        }
    }

    impl DeltaProblem for CountingDelta {
        fn rebase(&self, state: &i64) -> f64 {
            self.rebases.set(self.rebases.get() + 1);
            self.inner.rebase(state)
        }
        fn propose<R: Rng>(&self, state: &mut i64, rng: &mut R) -> f64 {
            self.proposes.set(self.proposes.get() + 1);
            self.inner.propose(state, rng)
        }
        fn commit(&self) {
            self.commits.set(self.commits.get() + 1);
            self.inner.commit();
        }
        fn undo(&self, state: &mut i64) {
            self.undos.set(self.undos.get() + 1);
            self.inner.undo(state);
        }
    }

    #[test]
    fn every_propose_pairs_with_one_commit_or_undo() {
        let annealer = Annealer::new(Schedule::quick());
        let problem = CountingDelta::new();
        let result = annealer.run_delta(&problem, 9);
        assert!(problem.rebases.get() >= 1);
        assert_eq!(
            problem.proposes.get(),
            problem.commits.get() + problem.undos.get()
        );
        assert_eq!(problem.commits.get(), result.stats.accepted);
        assert_eq!(problem.undos.get(), result.stats.rejected);
    }
}
