//! The annealing engine.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::Schedule;

/// A problem the annealer can optimize: a state space with a cost function
/// and a random perturbation.
///
/// Implementations must be deterministic given the RNG: the engine is
/// seeded, and the paper's protocol ("every test case is performed 20 times
/// using different random number generator seeds") relies on run-to-run
/// reproducibility per seed.
pub trait Problem {
    /// A candidate solution. Cloned when a new best is found and for
    /// per-temperature snapshots.
    type State: Clone;

    /// The starting state.
    fn initial_state(&self) -> Self::State;

    /// The cost to minimize. Must be finite for every reachable state.
    fn cost(&self, state: &Self::State) -> f64;

    /// Randomly perturbs `state` in place.
    fn perturb<R: Rng>(&self, state: &mut Self::State, rng: &mut R);
}

/// Statistics of one annealing run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealStats {
    /// Temperature steps executed.
    pub temperatures: usize,
    /// Moves accepted (including improving moves).
    pub accepted: usize,
    /// Moves rejected.
    pub rejected: usize,
    /// The adaptive initial temperature used.
    pub initial_temperature: f64,
    /// The final temperature reached.
    pub final_temperature: f64,
}

impl AnnealStats {
    /// Fraction of proposed moves that were accepted.
    #[must_use]
    pub fn acceptance_ratio(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

/// The locally optimized solution at the end of one temperature step —
/// what the paper's Experiment 2 extracts "at each temperature-dropping
/// step".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureSnapshot<S> {
    /// The temperature at which the step ran.
    pub temperature: f64,
    /// The *current* state at the end of the step — the locally
    /// optimized intermediate solution the paper extracts.
    pub current_state: S,
    /// The current state's cost.
    pub current_cost: f64,
    /// Best-so-far state at the end of the step.
    pub best_state: S,
    /// Best-so-far cost at the end of the step.
    pub best_cost: f64,
    /// Acceptance ratio within the step.
    pub acceptance_ratio: f64,
}

/// The outcome of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult<S> {
    /// The best state encountered.
    pub best: S,
    /// Its cost.
    pub best_cost: f64,
    /// Run statistics.
    pub stats: AnnealStats,
    /// Per-temperature snapshots (empty unless
    /// [`Schedule::snapshot_per_temperature`] is set).
    pub snapshots: Vec<TemperatureSnapshot<S>>,
}

/// A configured annealer. Stateless apart from the schedule; `run` may be
/// called many times with different seeds.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone, Copy)]
pub struct Annealer {
    schedule: Schedule,
}

impl Annealer {
    /// Creates an annealer with the given schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule parameters are out of range
    /// (see [`Schedule::validate`]).
    #[must_use]
    pub fn new(schedule: Schedule) -> Annealer {
        schedule.validate();
        Annealer { schedule }
    }

    /// The schedule in use.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Runs one seeded annealing optimization.
    ///
    /// Identical `(problem, seed)` pairs produce identical results.
    pub fn run<P: Problem>(&self, problem: &P, seed: u64) -> AnnealResult<P::State> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut current = problem.initial_state();
        let mut current_cost = problem.cost(&current);
        let mut best = current.clone();
        let mut best_cost = current_cost;

        let initial_temperature = self.estimate_initial_temperature(problem, &mut rng);
        let mut temperature = initial_temperature;
        let min_temperature = initial_temperature * self.schedule.min_temperature_ratio;

        let mut stats = AnnealStats {
            initial_temperature,
            final_temperature: initial_temperature,
            ..AnnealStats::default()
        };
        let mut snapshots = Vec::new();

        for _ in 0..self.schedule.max_temperatures {
            if temperature < min_temperature {
                break;
            }
            let mut step_accepted = 0usize;
            for _ in 0..self.schedule.moves_per_temperature {
                let mut candidate = current.clone();
                problem.perturb(&mut candidate, &mut rng);
                let candidate_cost = problem.cost(&candidate);
                let delta = candidate_cost - current_cost;
                let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
                if accept {
                    current = candidate;
                    current_cost = candidate_cost;
                    step_accepted += 1;
                    if current_cost < best_cost {
                        best = current.clone();
                        best_cost = current_cost;
                    }
                } else {
                    stats.rejected += 1;
                }
            }
            stats.accepted += step_accepted;
            stats.temperatures += 1;
            stats.final_temperature = temperature;
            if self.schedule.snapshot_per_temperature {
                snapshots.push(TemperatureSnapshot {
                    temperature,
                    current_state: current.clone(),
                    current_cost,
                    best_state: best.clone(),
                    best_cost,
                    acceptance_ratio: step_accepted as f64
                        / self.schedule.moves_per_temperature as f64,
                });
            }
            // Frozen: a full step with no accepted move cannot thaw at a
            // lower temperature.
            if step_accepted == 0 {
                break;
            }
            temperature *= self.schedule.cooling;
        }

        AnnealResult {
            best,
            best_cost,
            stats,
            snapshots,
        }
    }

    /// Samples random moves from the initial state and sets T₀ so the
    /// average uphill move is accepted with the configured probability:
    /// `T₀ = Δ̄⁺ / ln(1 / p₀)`.
    fn estimate_initial_temperature<P: Problem>(
        &self,
        problem: &P,
        rng: &mut ChaCha8Rng,
    ) -> f64 {
        const SAMPLES: usize = 64;
        let mut state = problem.initial_state();
        let mut cost = problem.cost(&state);
        let mut uphill_sum = 0.0;
        let mut uphill_count = 0usize;
        for _ in 0..SAMPLES {
            let mut candidate = state.clone();
            problem.perturb(&mut candidate, rng);
            let candidate_cost = problem.cost(&candidate);
            let delta = candidate_cost - cost;
            if delta > 0.0 {
                uphill_sum += delta;
                uphill_count += 1;
            }
            // Random-walk to sample the neighbourhood, not just the
            // initial state's immediate neighbours.
            state = candidate;
            cost = candidate_cost;
        }
        if uphill_count == 0 {
            // Flat or monotonically improving landscape: any small positive
            // temperature works; scale to the cost magnitude.
            return (cost.abs() * 0.01).max(1e-9);
        }
        let avg_uphill = uphill_sum / uphill_count as f64;
        avg_uphill / (1.0 / self.schedule.initial_acceptance).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Discrete quadratic bowl over integers.
    struct Bowl;

    impl Problem for Bowl {
        type State = i64;
        fn initial_state(&self) -> i64 {
            1000
        }
        fn cost(&self, s: &i64) -> f64 {
            ((s - 7) * (s - 7)) as f64
        }
        fn perturb<R: Rng>(&self, s: &mut i64, rng: &mut R) {
            *s += rng.gen_range(-10..=10);
        }
    }

    #[test]
    fn finds_bowl_minimum() {
        let result = Annealer::new(Schedule::default()).run(&Bowl, 1);
        assert!(
            (result.best - 7).abs() <= 2,
            "best {} should be near 7",
            result.best
        );
        assert!(result.best_cost <= 4.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let annealer = Annealer::new(Schedule::quick());
        let a = annealer.run(&Bowl, 99);
        let b = annealer.run(&Bowl, 99);
        assert_eq!(a.best, b.best);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let annealer = Annealer::new(Schedule::quick());
        let a = annealer.run(&Bowl, 1);
        let b = annealer.run(&Bowl, 2);
        // Both should be good, but the trajectories differ.
        assert_ne!(
            (a.stats.accepted, a.stats.rejected),
            (b.stats.accepted, b.stats.rejected)
        );
    }

    #[test]
    fn snapshots_recorded_when_enabled() {
        let schedule = Schedule {
            snapshot_per_temperature: true,
            ..Schedule::quick()
        };
        let result = Annealer::new(schedule).run(&Bowl, 5);
        assert_eq!(result.snapshots.len(), result.stats.temperatures);
        // Best cost is non-increasing across snapshots.
        for pair in result.snapshots.windows(2) {
            assert!(pair[1].best_cost <= pair[0].best_cost);
            assert!(pair[1].temperature < pair[0].temperature);
        }
    }

    #[test]
    fn no_snapshots_by_default() {
        let result = Annealer::new(Schedule::quick()).run(&Bowl, 5);
        assert!(result.snapshots.is_empty());
    }

    #[test]
    fn stats_are_consistent() {
        let schedule = Schedule::quick();
        let result = Annealer::new(schedule).run(&Bowl, 3);
        let proposed = result.stats.accepted + result.stats.rejected;
        assert_eq!(
            proposed,
            result.stats.temperatures * schedule.moves_per_temperature
        );
        assert!(result.stats.initial_temperature > 0.0);
        assert!(result.stats.final_temperature <= result.stats.initial_temperature);
        let ratio = result.stats.acceptance_ratio();
        assert!((0.0..=1.0).contains(&ratio));
    }

    /// A flat landscape: every state costs the same.
    struct Flat;

    impl Problem for Flat {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn cost(&self, _: &u8) -> f64 {
            5.0
        }
        fn perturb<R: Rng>(&self, s: &mut u8, rng: &mut R) {
            *s = rng.gen();
        }
    }

    #[test]
    fn flat_landscape_terminates() {
        let result = Annealer::new(Schedule::quick()).run(&Flat, 0);
        assert_eq!(result.best_cost, 5.0);
        assert!(result.stats.temperatures > 0);
    }

    #[test]
    fn best_never_worse_than_initial() {
        let annealer = Annealer::new(Schedule::quick());
        for seed in 0..10 {
            let result = annealer.run(&Bowl, seed);
            assert!(result.best_cost <= Bowl.cost(&Bowl.initial_state()));
        }
    }

    #[test]
    #[should_panic(expected = "cooling")]
    fn annealer_rejects_invalid_schedule() {
        let _ = Annealer::new(Schedule {
            cooling: 0.0,
            ..Schedule::default()
        });
    }
}
