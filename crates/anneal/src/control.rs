//! Run control for fault-tolerant annealing: cooperative cancellation,
//! wall-clock deadlines, move budgets, and typed errors.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
// irgrid-lint: allow(D1): wall-clock here only decides when a run stops between moves; it never feeds a cost or map, and deadlines are excluded from checkpoints
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::schedule::ScheduleError;

/// A clonable cancellation flag shared between the annealing thread and
/// whoever wants to stop it (a signal handler, a supervisor thread, a UI).
///
/// Cancellation is cooperative: the engine polls the token between moves
/// and stops with [`StopReason::Cancelled`] at the next poll.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Limits on a controlled annealing run.
///
/// The default ([`RunControl::unlimited`]) imposes nothing, making
/// [`Annealer::run_controlled`](crate::Annealer::run_controlled) behave
/// exactly like [`Annealer::run`](crate::Annealer::run). Limits compose:
/// the first one hit stops the run, and the partial result (best state so
/// far plus accurate statistics) is still returned.
///
/// All limits stop the run *between* proposed moves, so a stopped run's
/// statistics are exact and a run resumed from the last checkpoint
/// replays the interrupted tail bit-identically.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    // irgrid-lint: allow(D1): deadline gates run length only, never cost
    pub(crate) deadline: Option<Instant>,
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) move_budget: Option<u64>,
    pub(crate) step_budget: Option<usize>,
    pub(crate) checkpoint_every: Option<usize>,
}

impl RunControl {
    /// No limits: run to schedule completion.
    #[must_use]
    pub fn unlimited() -> RunControl {
        RunControl::default()
    }

    /// Stops the run at a fixed point in time.
    #[must_use]
    // irgrid-lint: allow(D1): deadline gates run length only, never cost
    pub fn with_deadline(mut self, deadline: Instant) -> RunControl {
        self.deadline = Some(deadline);
        self
    }

    /// Stops the run `limit` after *now* (sugar over [`with_deadline`]).
    ///
    /// [`with_deadline`]: RunControl::with_deadline
    #[must_use]
    pub fn with_time_limit(self, limit: Duration) -> RunControl {
        self.with_deadline(Instant::now() + limit) // irgrid-lint: allow(D1): deadline gates run length only, never cost
    }

    /// Stops the run when `token` is cancelled.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> RunControl {
        self.cancel = Some(token);
        self
    }

    /// Stops the run after `budget` *total* proposed moves. Counted
    /// against [`AnnealStats`](crate::AnnealStats) (accepted + rejected),
    /// so the budget spans resumes: a run resumed from a checkpoint keeps
    /// the moves already spent.
    #[must_use]
    pub fn with_move_budget(mut self, budget: u64) -> RunControl {
        self.move_budget = Some(budget);
        self
    }

    /// Stops the run once `budget` *total* temperature steps have
    /// completed, always at a step boundary. Counted against
    /// [`AnnealStats::temperatures`](crate::AnnealStats), so the budget
    /// spans resumes: resuming a run checkpointed at step `k` with a
    /// budget of `k + n` runs exactly `n` further steps.
    ///
    /// Because the stop lands on a boundary, the engine emits one final
    /// [`Checkpoint`](crate::Checkpoint) to the run's sink when the
    /// budget trips (even without a
    /// [`with_checkpoint_every`](RunControl::with_checkpoint_every)
    /// cadence). This is the segmentation hook the `irgrid-fleet`
    /// supervisor uses to interleave replicas: run `n` steps, capture the
    /// boundary state, exchange, resume.
    #[must_use]
    pub fn with_step_budget(mut self, budget: usize) -> RunControl {
        self.step_budget = Some(budget);
        self
    }

    /// Emits a [`Checkpoint`](crate::Checkpoint) to the run's checkpoint
    /// sink every `steps` completed temperature steps.
    ///
    /// Only meaningful with
    /// [`Annealer::run_with_checkpoints`](crate::Annealer::run_with_checkpoints)
    /// or [`Annealer::resume_with_checkpoints`](crate::Annealer::resume_with_checkpoints);
    /// plain `run_controlled` has no sink to write to.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    #[must_use]
    pub fn with_checkpoint_every(mut self, steps: usize) -> RunControl {
        assert!(steps > 0, "checkpoint cadence must be positive");
        self.checkpoint_every = Some(steps);
        self
    }

    /// Whether the deadline (if any) has passed.
    ///
    /// Public so other subsystems (the `irgrid-serve` request handlers)
    /// can reuse `RunControl` as their timeout/budget primitive without
    /// reimplementing the trip logic.
    #[must_use]
    pub fn deadline_hit(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d) // irgrid-lint: allow(D1): deadline gates run length only, never cost
    }

    /// Whether cancellation (if any) was requested.
    #[must_use]
    pub fn cancel_hit(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Whether the move budget (if any) is exhausted at `moves_done`
    /// proposed moves (for `irgrid-serve` sessions: evaluations).
    #[must_use]
    pub fn budget_hit(&self, moves_done: u64) -> bool {
        self.move_budget.is_some_and(|b| moves_done >= b)
    }

    /// Whether the step budget (if any) is exhausted at `steps_done`.
    #[must_use]
    pub fn step_budget_hit(&self, steps_done: usize) -> bool {
        self.step_budget.is_some_and(|b| steps_done >= b)
    }
}

/// Why a controlled annealing run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The temperature fell below `T₀ × min_temperature_ratio`: the
    /// schedule ran to natural completion.
    Converged,
    /// A full temperature step accepted no move; nothing can thaw at a
    /// lower temperature.
    Frozen,
    /// The [`Schedule::max_temperatures`](crate::Schedule::max_temperatures)
    /// cap was reached.
    MaxTemperatures,
    /// The wall-clock deadline passed ([`RunControl::with_deadline`]).
    Deadline,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The total-move budget was exhausted
    /// ([`RunControl::with_move_budget`]).
    MoveBudget,
    /// The total-temperature-step budget was exhausted
    /// ([`RunControl::with_step_budget`]); the run stopped exactly at a
    /// step boundary and emitted a final checkpoint there.
    StepBudget,
    /// A candidate cost came back non-finite mid-run. The result still
    /// holds the best *finite*-cost state seen; the poisoned candidate
    /// was discarded.
    CostError,
}

impl StopReason {
    /// Whether the schedule finished on its own terms (as opposed to
    /// being interrupted or hitting a cost error).
    #[must_use]
    pub fn is_natural(&self) -> bool {
        matches!(
            self,
            StopReason::Converged | StopReason::Frozen | StopReason::MaxTemperatures
        )
    }

    /// Whether the run was interrupted by an external limit and can be
    /// meaningfully resumed from its last checkpoint.
    #[must_use]
    pub fn is_interrupted(&self) -> bool {
        matches!(
            self,
            StopReason::Deadline
                | StopReason::Cancelled
                | StopReason::MoveBudget
                | StopReason::StepBudget
        )
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            StopReason::Converged => "converged (minimum temperature reached)",
            StopReason::Frozen => "frozen (no accepted move in a full step)",
            StopReason::MaxTemperatures => "maximum temperature steps reached",
            StopReason::Deadline => "wall-clock deadline reached",
            StopReason::Cancelled => "cancelled",
            StopReason::MoveBudget => "move budget exhausted",
            StopReason::StepBudget => "temperature-step budget exhausted",
            StopReason::CostError => "stopped on non-finite cost",
        };
        f.write_str(text)
    }
}

/// A typed error from a controlled annealing run.
#[derive(Debug, Clone, PartialEq)]
pub enum AnnealError {
    /// The schedule parameters are out of range.
    Schedule(ScheduleError),
    /// The initial state's cost is NaN or infinite; annealing cannot
    /// start because no finite baseline exists.
    NonFiniteInitialCost {
        /// The offending cost value.
        cost: f64,
    },
    /// A cost sampled during initial-temperature estimation was NaN or
    /// infinite.
    NonFiniteEstimationCost {
        /// The offending cost value.
        cost: f64,
    },
    /// The estimated initial temperature is not finite and positive
    /// (degenerate cost landscape).
    InvalidInitialTemperature {
        /// The offending temperature value.
        temperature: f64,
    },
    /// A checkpoint was produced by an incompatible format version.
    CheckpointVersion {
        /// Version found in the checkpoint.
        found: u32,
        /// Version this library writes and reads.
        expected: u32,
    },
    /// A checkpoint's schedule differs from the annealer's; resuming
    /// would not reproduce the original run.
    ScheduleMismatch,
    /// A checkpoint carries non-finite costs or temperatures and cannot
    /// be trusted.
    CorruptCheckpoint {
        /// Which field failed validation.
        field: &'static str,
    },
}

impl fmt::Display for AnnealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnealError::Schedule(err) => write!(f, "invalid schedule: {err}"),
            AnnealError::NonFiniteInitialCost { cost } => {
                write!(f, "initial state has non-finite cost {cost}")
            }
            AnnealError::NonFiniteEstimationCost { cost } => write!(
                f,
                "non-finite cost {cost} while estimating the initial temperature"
            ),
            AnnealError::InvalidInitialTemperature { temperature } => write!(
                f,
                "estimated initial temperature {temperature} is not finite and positive"
            ),
            AnnealError::CheckpointVersion { found, expected } => write!(
                f,
                "checkpoint format version {found} is not supported (expected {expected})"
            ),
            AnnealError::ScheduleMismatch => write!(
                f,
                "checkpoint schedule differs from the annealer's schedule; \
                 resuming would not reproduce the original run"
            ),
            AnnealError::CorruptCheckpoint { field } => {
                write!(f, "checkpoint field `{field}` failed validation")
            }
        }
    }
}

impl std::error::Error for AnnealError {}

impl From<ScheduleError> for AnnealError {
    fn from(err: ScheduleError) -> Self {
        AnnealError::Schedule(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn unlimited_control_never_trips() {
        let control = RunControl::unlimited();
        assert!(!control.deadline_hit());
        assert!(!control.cancel_hit());
        assert!(!control.budget_hit(u64::MAX));
        assert!(!control.step_budget_hit(usize::MAX));
    }

    #[test]
    fn step_budget_trips_at_exact_count() {
        let control = RunControl::unlimited().with_step_budget(4);
        assert!(!control.step_budget_hit(3));
        assert!(control.step_budget_hit(4));
        assert!(control.step_budget_hit(5));
    }

    #[test]
    fn budget_trips_at_exact_count() {
        let control = RunControl::unlimited().with_move_budget(10);
        assert!(!control.budget_hit(9));
        assert!(control.budget_hit(10));
        assert!(control.budget_hit(11));
    }

    #[test]
    fn past_deadline_trips_immediately() {
        let control = RunControl::unlimited().with_time_limit(Duration::ZERO);
        assert!(control.deadline_hit());
    }

    #[test]
    fn stop_reason_classification() {
        assert!(StopReason::Converged.is_natural());
        assert!(StopReason::Frozen.is_natural());
        assert!(StopReason::MaxTemperatures.is_natural());
        assert!(StopReason::Deadline.is_interrupted());
        assert!(StopReason::Cancelled.is_interrupted());
        assert!(StopReason::MoveBudget.is_interrupted());
        assert!(StopReason::StepBudget.is_interrupted());
        assert!(!StopReason::StepBudget.is_natural());
        assert!(!StopReason::CostError.is_natural());
        assert!(!StopReason::CostError.is_interrupted());
    }

    #[test]
    fn stop_reason_serde_roundtrip() {
        for reason in [
            StopReason::Converged,
            StopReason::Frozen,
            StopReason::MaxTemperatures,
            StopReason::Deadline,
            StopReason::Cancelled,
            StopReason::MoveBudget,
            StopReason::StepBudget,
            StopReason::CostError,
        ] {
            let value = serde::Serialize::to_value(&reason);
            let back: StopReason = serde::Deserialize::from_value(&value).expect("roundtrip");
            assert_eq!(reason, back);
        }
    }
}
