//! Annealing schedule parameters.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A schedule parameter that failed validation.
///
/// Returned by [`Schedule::validated`]; the panicking
/// [`Schedule::validate`] formats these into its messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleError {
    /// `initial_acceptance` outside (0, 1).
    InitialAcceptance(f64),
    /// `cooling` outside (0, 1).
    Cooling(f64),
    /// `moves_per_temperature` is zero.
    ZeroMoves,
    /// `min_temperature_ratio` outside (0, 1).
    MinTemperatureRatio(f64),
    /// `max_temperatures` is zero.
    ZeroMaxTemperatures,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InitialAcceptance(v) => {
                write!(f, "initial_acceptance must be in (0, 1), got {v}")
            }
            ScheduleError::Cooling(v) => write!(f, "cooling must be in (0, 1), got {v}"),
            ScheduleError::ZeroMoves => write!(f, "moves_per_temperature must be positive"),
            ScheduleError::MinTemperatureRatio(v) => {
                write!(f, "min_temperature_ratio must be in (0, 1), got {v}")
            }
            ScheduleError::ZeroMaxTemperatures => write!(f, "max_temperatures must be positive"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Parameters of the geometric annealing schedule.
///
/// The initial temperature is chosen adaptively so that a random uphill
/// move is accepted with probability [`initial_acceptance`]; each
/// temperature step multiplies the temperature by [`cooling`] and runs
/// [`moves_per_temperature`] proposed moves; annealing stops when the
/// temperature drops below `initial × min_temperature_ratio`, when
/// [`max_temperatures`] steps have run, or when a whole temperature step
/// accepts nothing.
///
/// [`initial_acceptance`]: Schedule::initial_acceptance
/// [`cooling`]: Schedule::cooling
/// [`moves_per_temperature`]: Schedule::moves_per_temperature
/// [`max_temperatures`]: Schedule::max_temperatures
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Target acceptance probability of an average uphill move at the
    /// initial temperature (classically ~0.95).
    pub initial_acceptance: f64,
    /// Geometric cooling ratio λ, 0 < λ < 1 (classically 0.85–0.95).
    pub cooling: f64,
    /// Proposed moves per temperature step.
    pub moves_per_temperature: usize,
    /// Stop when `T < T₀ × min_temperature_ratio`.
    pub min_temperature_ratio: f64,
    /// Hard cap on the number of temperature steps.
    pub max_temperatures: usize,
    /// Whether to record a [`TemperatureSnapshot`] per temperature step
    /// (needed by the paper's Experiment 2; costs one state clone per
    /// step).
    ///
    /// [`TemperatureSnapshot`]: crate::TemperatureSnapshot
    pub snapshot_per_temperature: bool,
}

impl Schedule {
    /// Validates the parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if a parameter is out of range.
    /// Called by the engine before running. Prefer [`Schedule::validated`]
    /// when the schedule comes from untrusted input (a config file, a
    /// checkpoint) and a recoverable error is wanted.
    pub fn validate(&self) {
        if let Err(err) = self.validated() {
            // irgrid-lint: allow(P1): documented panicking validator; Schedule::validated is the typed path
            panic!("{err}");
        }
    }

    /// Checks the parameter ranges, returning the first violation as a
    /// typed error instead of panicking.
    pub fn validated(&self) -> Result<(), ScheduleError> {
        // NaN fails both comparisons, so non-finite values are rejected
        // along with out-of-range ones.
        if !(self.initial_acceptance > 0.0 && self.initial_acceptance < 1.0) {
            return Err(ScheduleError::InitialAcceptance(self.initial_acceptance));
        }
        if !(self.cooling > 0.0 && self.cooling < 1.0) {
            return Err(ScheduleError::Cooling(self.cooling));
        }
        if self.moves_per_temperature == 0 {
            return Err(ScheduleError::ZeroMoves);
        }
        if !(self.min_temperature_ratio > 0.0 && self.min_temperature_ratio < 1.0) {
            return Err(ScheduleError::MinTemperatureRatio(
                self.min_temperature_ratio,
            ));
        }
        if self.max_temperatures == 0 {
            return Err(ScheduleError::ZeroMaxTemperatures);
        }
        Ok(())
    }

    /// A faster schedule for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Schedule {
        Schedule {
            moves_per_temperature: 60,
            cooling: 0.80,
            max_temperatures: 60,
            ..Schedule::default()
        }
    }
}

impl Default for Schedule {
    /// The paper-era classic: acceptance 0.95, λ = 0.9, stop at T₀/10⁵ or
    /// 300 temperatures.
    fn default() -> Schedule {
        Schedule {
            initial_acceptance: 0.95,
            cooling: 0.90,
            moves_per_temperature: 400,
            min_temperature_ratio: 1e-5,
            max_temperatures: 300,
            snapshot_per_temperature: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        Schedule::default().validate();
        Schedule::quick().validate();
        assert_eq!(Schedule::default().validated(), Ok(()));
        assert_eq!(Schedule::quick().validated(), Ok(()));
    }

    #[test]
    fn validated_returns_typed_errors() {
        let bad = Schedule {
            cooling: 1.5,
            ..Schedule::default()
        };
        assert_eq!(bad.validated(), Err(ScheduleError::Cooling(1.5)));

        let bad = Schedule {
            initial_acceptance: f64::NAN,
            ..Schedule::default()
        };
        assert!(matches!(
            bad.validated(),
            Err(ScheduleError::InitialAcceptance(_))
        ));

        let bad = Schedule {
            min_temperature_ratio: 0.0,
            ..Schedule::default()
        };
        assert_eq!(
            bad.validated(),
            Err(ScheduleError::MinTemperatureRatio(0.0))
        );

        let bad = Schedule {
            max_temperatures: 0,
            ..Schedule::default()
        };
        assert_eq!(bad.validated(), Err(ScheduleError::ZeroMaxTemperatures));
    }

    #[test]
    #[should_panic(expected = "cooling must be in (0, 1)")]
    fn rejects_bad_cooling() {
        Schedule {
            cooling: 1.5,
            ..Schedule::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "initial_acceptance")]
    fn rejects_bad_acceptance() {
        Schedule {
            initial_acceptance: 0.0,
            ..Schedule::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "moves_per_temperature")]
    fn rejects_zero_moves() {
        Schedule {
            moves_per_temperature: 0,
            ..Schedule::default()
        }
        .validate();
    }
}
