//! Fixed-point micron geometry primitives for the `irgrid` workspace.
//!
//! Every length in the workspace is an integer number of micrometers wrapped
//! in the [`Um`] newtype; areas are [`UmArea`] (µm², `i128` so a full-chip
//! area never overflows). Keeping coordinates integral makes geometric
//! predicates exact, which matters for the Irregular-Grid construction: the
//! cutting lines extracted from net routing ranges must compare equal when
//! two nets share a boundary, and floating-point coordinates would split one
//! logical cutting line into several.
//!
//! # Examples
//!
//! ```
//! use irgrid_geom::{Point, Rect, Um};
//!
//! let chip = Rect::new(Point::new(Um(0), Um(0)), Point::new(Um(300), Um(200)));
//! let range = Rect::from_corner_points(
//!     Point::new(Um(250), Um(50)),
//!     Point::new(Um(40), Um(180)),
//! );
//! assert!(chip.contains_rect(&range));
//! assert_eq!(range.width(), Um(210));
//! assert_eq!(range.area().0, 210 * 130);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval;
mod point;
mod rect;
mod um;

pub use interval::Interval;
pub use point::Point;
pub use rect::Rect;
pub use um::{Um, UmArea};
