//! Axis-aligned rectangles.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Interval, Point, Um, UmArea};

/// An axis-aligned rectangle, closed on all four sides.
///
/// Rectangles may be degenerate in either axis: the routing range of a
/// 2-pin net whose pins are horizontally aligned is a zero-height rectangle
/// (the paper's "line" case), and a net whose pins coincide is a single
/// point.
///
/// # Examples
///
/// ```
/// use irgrid_geom::{Point, Rect, Um};
///
/// let r = Rect::from_corner_points(
///     Point::new(Um(10), Um(40)),
///     Point::new(Um(30), Um(0)),
/// );
/// assert_eq!(r.ll(), Point::new(Um(10), Um(0)));
/// assert_eq!(r.ur(), Point::new(Um(30), Um(40)));
/// assert_eq!(r.area().0, 20 * 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    ll: Point,
    ur: Point,
}

impl Rect {
    /// Creates a rectangle from its lower-left and upper-right corners.
    ///
    /// # Panics
    ///
    /// Panics if `ll` is not component-wise ≤ `ur`.
    #[must_use]
    pub fn new(ll: Point, ur: Point) -> Rect {
        assert!(
            ll.x <= ur.x && ll.y <= ur.y,
            "lower-left corner {ll} must not exceed upper-right corner {ur}"
        );
        Rect { ll, ur }
    }

    /// Creates the bounding box of two arbitrary corner points.
    ///
    /// This is exactly the "routing range" construction of the paper: the
    /// bounding box of a 2-pin net's pins.
    #[must_use]
    pub fn from_corner_points(a: Point, b: Point) -> Rect {
        Rect {
            ll: a.min(b),
            ur: a.max(b),
        }
    }

    /// Creates a rectangle from its origin and extents.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    #[must_use]
    pub fn from_origin_size(origin: Point, width: Um, height: Um) -> Rect {
        assert!(
            width >= Um::ZERO && height >= Um::ZERO,
            "rect extents must be non-negative, got {width} x {height}"
        );
        Rect {
            ll: origin,
            ur: Point::new(origin.x + width, origin.y + height),
        }
    }

    /// Lower-left corner.
    #[must_use]
    pub fn ll(&self) -> Point {
        self.ll
    }

    /// Upper-right corner.
    #[must_use]
    pub fn ur(&self) -> Point {
        self.ur
    }

    /// Horizontal extent as an interval.
    #[must_use]
    pub fn x_range(&self) -> Interval {
        Interval::new(self.ll.x, self.ur.x)
    }

    /// Vertical extent as an interval.
    #[must_use]
    pub fn y_range(&self) -> Interval {
        Interval::new(self.ll.y, self.ur.y)
    }

    /// Width (`ur.x - ll.x`).
    #[must_use]
    pub fn width(&self) -> Um {
        self.ur.x - self.ll.x
    }

    /// Height (`ur.y - ll.y`).
    #[must_use]
    pub fn height(&self) -> Um {
        self.ur.y - self.ll.y
    }

    /// Area in µm².
    #[must_use]
    pub fn area(&self) -> UmArea {
        self.width() * self.height()
    }

    /// Center point, rounded down to integer micrometers.
    #[must_use]
    pub fn center(&self) -> Point {
        Point::new(self.ll.x + self.width() / 2, self.ll.y + self.height() / 2)
    }

    /// Whether the rectangle has zero area (a line or a point).
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.width() == Um::ZERO || self.height() == Um::ZERO
    }

    /// Whether `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        self.x_range().contains(p.x) && self.y_range().contains(p.y)
    }

    /// Whether `other` lies entirely within `self` (boundaries may touch).
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x_range().contains_interval(other.x_range())
            && self.y_range().contains_interval(other.y_range())
    }

    /// The overlap with `other`, or `None` if they are disjoint.
    ///
    /// Rectangles that merely touch overlap in a degenerate rectangle.
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x = self.x_range().intersection(other.x_range())?;
        let y = self.y_range().intersection(other.y_range())?;
        Some(Rect {
            ll: Point::new(x.lo(), y.lo()),
            ur: Point::new(x.hi(), y.hi()),
        })
    }

    /// Whether `self` and `other` overlap with positive area.
    #[must_use]
    pub fn overlaps_area(&self, other: &Rect) -> bool {
        self.intersection(other).is_some_and(|r| !r.is_degenerate())
    }

    /// The smallest rectangle covering both `self` and `other`.
    #[must_use]
    pub fn hull(&self, other: &Rect) -> Rect {
        Rect {
            ll: self.ll.min(other.ll),
            ur: self.ur.max(other.ur),
        }
    }

    /// Translates by `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: Um, dy: Um) -> Rect {
        let d = Point::new(dx, dy);
        Rect {
            ll: self.ll + d,
            ur: self.ur + d,
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.ll, self.ur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Point::new(Um(x0), Um(y0)), Point::new(Um(x1), Um(y1)))
    }

    #[test]
    fn from_corner_points_normalizes() {
        let r = Rect::from_corner_points(Point::new(Um(5), Um(1)), Point::new(Um(2), Um(9)));
        assert_eq!(r, rect(2, 1, 5, 9));
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn new_rejects_inverted_corners() {
        let _ = rect(5, 0, 4, 1);
    }

    #[test]
    fn extent_accessors() {
        let r = rect(1, 2, 4, 10);
        assert_eq!(r.width(), Um(3));
        assert_eq!(r.height(), Um(8));
        assert_eq!(r.area(), UmArea(24));
        assert_eq!(r.center(), Point::new(Um(2), Um(6)));
    }

    #[test]
    fn degenerate_shapes() {
        assert!(rect(0, 0, 0, 5).is_degenerate()); // vertical line
        assert!(rect(0, 0, 5, 0).is_degenerate()); // horizontal line
        assert!(rect(3, 3, 3, 3).is_degenerate()); // point
        assert!(!rect(0, 0, 1, 1).is_degenerate());
    }

    #[test]
    fn containment() {
        let outer = rect(0, 0, 10, 10);
        assert!(outer.contains(Point::new(Um(0), Um(10))));
        assert!(!outer.contains(Point::new(Um(11), Um(0))));
        assert!(outer.contains_rect(&rect(1, 1, 9, 9)));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.contains_rect(&rect(1, 1, 11, 9)));
    }

    #[test]
    fn intersection_and_overlap() {
        let a = rect(0, 0, 10, 10);
        let b = rect(5, 5, 15, 15);
        assert_eq!(a.intersection(&b), Some(rect(5, 5, 10, 10)));
        assert!(a.overlaps_area(&b));
        // Touching edge: degenerate overlap, no positive-area overlap.
        let c = rect(10, 0, 20, 10);
        assert_eq!(a.intersection(&c), Some(rect(10, 0, 10, 10)));
        assert!(!a.overlaps_area(&c));
        // Disjoint.
        assert_eq!(a.intersection(&rect(11, 11, 12, 12)), None);
    }

    #[test]
    fn hull_and_translate() {
        let h = rect(0, 0, 1, 1).hull(&rect(5, 7, 6, 9));
        assert_eq!(h, rect(0, 0, 6, 9));
        assert_eq!(
            rect(0, 0, 1, 1).translated(Um(3), Um(-2)),
            rect(3, -2, 4, -1)
        );
    }
}
