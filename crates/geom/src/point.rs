//! 2-D points.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

use crate::Um;

/// A point in the chip plane, in micrometers.
///
/// # Examples
///
/// ```
/// use irgrid_geom::{Point, Um};
///
/// let a = Point::new(Um(10), Um(20));
/// let b = Point::new(Um(13), Um(16));
/// assert_eq!(a.manhattan_distance(b), Um(7));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Um,
    /// Vertical coordinate.
    pub y: Um,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point {
        x: Um::ZERO,
        y: Um::ZERO,
    };

    /// Creates a point from its coordinates.
    #[must_use]
    pub fn new(x: Um, y: Um) -> Point {
        Point { x, y }
    }

    /// The L1 (Manhattan) distance to `other`.
    ///
    /// All routes in the congestion model are shortest Manhattan paths, so
    /// this is also the wirelength contribution of a 2-pin net.
    #[must_use]
    pub fn manhattan_distance(self, other: Point) -> Um {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise minimum.
    #[must_use]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[must_use]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric_and_l1() {
        let a = Point::new(Um(0), Um(0));
        let b = Point::new(Um(3), Um(-4));
        assert_eq!(a.manhattan_distance(b), Um(7));
        assert_eq!(b.manhattan_distance(a), Um(7));
        assert_eq!(a.manhattan_distance(a), Um::ZERO);
    }

    #[test]
    fn component_min_max() {
        let a = Point::new(Um(1), Um(9));
        let b = Point::new(Um(5), Um(2));
        assert_eq!(a.min(b), Point::new(Um(1), Um(2)));
        assert_eq!(a.max(b), Point::new(Um(5), Um(9)));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Point::new(Um(1), Um(2));
        let d = Point::new(Um(10), Um(-5));
        assert_eq!(a + d - d, a);
    }

    #[test]
    fn display() {
        assert_eq!(Point::new(Um(1), Um(2)).to_string(), "(1um, 2um)");
    }
}
