//! Micron-denominated scalar types.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A length in integer micrometers.
///
/// `Um` is the only length unit used across the workspace. It is a thin
/// newtype over `i64`, so arithmetic is exact and two coordinates derived
/// from the same module edge always compare equal — a prerequisite for the
/// Irregular-Grid cutting-line dedup.
///
/// # Examples
///
/// ```
/// use irgrid_geom::Um;
///
/// let pitch = Um(30);
/// assert_eq!(pitch * 4, Um(120));
/// assert_eq!(Um(100).div_ceil(pitch), 4);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Um(pub i64);

impl Um {
    /// The zero length.
    pub const ZERO: Um = Um(0);

    /// Largest representable length.
    pub const MAX: Um = Um(i64::MAX);

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Um {
        Um(self.0.abs())
    }

    /// The smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Um) -> Um {
        Um(self.0.min(other.0))
    }

    /// The larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Um) -> Um {
        Um(self.0.max(other.0))
    }

    /// Number of whole `pitch`-sized steps needed to cover `self`,
    /// rounding up.
    ///
    /// This is how a chip edge is converted to a grid-cell count.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    #[must_use]
    pub fn div_ceil(self, pitch: Um) -> i64 {
        assert!(pitch.0 > 0, "pitch must be positive, got {pitch}");
        (self.0 + pitch.0 - 1).div_euclid(pitch.0)
    }

    /// Number of whole `pitch`-sized steps below `self`, rounding down.
    ///
    /// # Panics
    ///
    /// Panics if `pitch` is not positive.
    #[must_use]
    pub fn div_floor(self, pitch: Um) -> i64 {
        assert!(pitch.0 > 0, "pitch must be positive, got {pitch}");
        self.0.div_euclid(pitch.0)
    }

    /// Converts to `f64` micrometers (for metrics and reporting only —
    /// geometric predicates stay in integers).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Um {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}um", self.0)
    }
}

impl From<i64> for Um {
    fn from(v: i64) -> Self {
        Um(v)
    }
}

impl Add for Um {
    type Output = Um;
    fn add(self, rhs: Um) -> Um {
        Um(self.0 + rhs.0)
    }
}

impl AddAssign for Um {
    fn add_assign(&mut self, rhs: Um) {
        self.0 += rhs.0;
    }
}

impl Sub for Um {
    type Output = Um;
    fn sub(self, rhs: Um) -> Um {
        Um(self.0 - rhs.0)
    }
}

impl SubAssign for Um {
    fn sub_assign(&mut self, rhs: Um) {
        self.0 -= rhs.0;
    }
}

impl Neg for Um {
    type Output = Um;
    fn neg(self) -> Um {
        Um(-self.0)
    }
}

impl Mul<i64> for Um {
    type Output = Um;
    fn mul(self, rhs: i64) -> Um {
        Um(self.0 * rhs)
    }
}

impl Mul<Um> for Um {
    type Output = UmArea;
    fn mul(self, rhs: Um) -> UmArea {
        UmArea(i128::from(self.0) * i128::from(rhs.0))
    }
}

impl Div<i64> for Um {
    type Output = Um;
    fn div(self, rhs: i64) -> Um {
        Um(self.0 / rhs)
    }
}

impl Rem<Um> for Um {
    type Output = Um;
    fn rem(self, rhs: Um) -> Um {
        Um(self.0.rem_euclid(rhs.0))
    }
}

impl Sum for Um {
    fn sum<I: Iterator<Item = Um>>(iter: I) -> Um {
        iter.fold(Um::ZERO, Add::add)
    }
}

/// An area in square micrometers.
///
/// Stored as `i128`: a 10 mm × 10 mm chip is 10⁸ µm², and intermediate sums
/// over thousands of modules stay far from overflow.
///
/// # Examples
///
/// ```
/// use irgrid_geom::{Um, UmArea};
///
/// let a = Um(2000) * Um(3000); // 2 mm x 3 mm
/// assert_eq!(a, UmArea(6_000_000));
/// assert!((a.as_mm2() - 6.0).abs() < 1e-12);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct UmArea(pub i128);

impl UmArea {
    /// The zero area.
    pub const ZERO: UmArea = UmArea(0);

    /// Converts to square millimeters (reporting convenience; the paper's
    /// tables quote areas in mm²).
    #[must_use]
    pub fn as_mm2(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Converts to `f64` µm².
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for UmArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}um2", self.0)
    }
}

impl Add for UmArea {
    type Output = UmArea;
    fn add(self, rhs: UmArea) -> UmArea {
        UmArea(self.0 + rhs.0)
    }
}

impl AddAssign for UmArea {
    fn add_assign(&mut self, rhs: UmArea) {
        self.0 += rhs.0;
    }
}

impl Sub for UmArea {
    type Output = UmArea;
    fn sub(self, rhs: UmArea) -> UmArea {
        UmArea(self.0 - rhs.0)
    }
}

impl Sum for UmArea {
    fn sum<I: Iterator<Item = UmArea>>(iter: I) -> UmArea {
        iter.fold(UmArea::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Um(7) + Um(5) - Um(2);
        assert_eq!(a, Um(10));
        let mut b = a;
        b += Um(1);
        b -= Um(11);
        assert_eq!(b, Um::ZERO);
        assert_eq!(-Um(3), Um(-3));
        assert_eq!(Um(-3).abs(), Um(3));
    }

    #[test]
    fn min_max() {
        assert_eq!(Um(3).min(Um(9)), Um(3));
        assert_eq!(Um(3).max(Um(9)), Um(9));
    }

    #[test]
    fn div_ceil_covers_edge() {
        assert_eq!(Um(100).div_ceil(Um(30)), 4);
        assert_eq!(Um(90).div_ceil(Um(30)), 3);
        assert_eq!(Um(1).div_ceil(Um(30)), 1);
        assert_eq!(Um(0).div_ceil(Um(30)), 0);
    }

    #[test]
    fn div_floor_truncates() {
        assert_eq!(Um(100).div_floor(Um(30)), 3);
        assert_eq!(Um(90).div_floor(Um(30)), 3);
        assert_eq!(Um(29).div_floor(Um(30)), 0);
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn div_ceil_rejects_zero_pitch() {
        let _ = Um(10).div_ceil(Um(0));
    }

    #[test]
    fn area_product_and_units() {
        assert_eq!(Um(2000) * Um(3000), UmArea(6_000_000));
        assert!((UmArea(6_000_000).as_mm2() - 6.0).abs() < 1e-12);
        let total: UmArea = [Um(2) * Um(3), Um(4) * Um(5)].into_iter().sum();
        assert_eq!(total, UmArea(26));
    }

    #[test]
    fn rem_is_euclidean() {
        assert_eq!(Um(7) % Um(3), Um(1));
        assert_eq!(Um(-1) % Um(3), Um(2));
    }

    #[test]
    fn display_has_unit_suffix() {
        assert_eq!(Um(42).to_string(), "42um");
        assert_eq!(UmArea(9).to_string(), "9um2");
    }

    #[test]
    fn um_sum() {
        let s: Um = [Um(1), Um(2), Um(3)].into_iter().sum();
        assert_eq!(s, Um(6));
    }
}
