//! Closed 1-D intervals.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Um;

/// A closed interval `[lo, hi]` on one axis, in micrometers.
///
/// Degenerate intervals (`lo == hi`) are allowed: a 2-pin net whose pins
/// share an x-coordinate has a zero-width routing range in that axis.
///
/// # Examples
///
/// ```
/// use irgrid_geom::{Interval, Um};
///
/// let a = Interval::new(Um(0), Um(10));
/// let b = Interval::new(Um(4), Um(20));
/// assert_eq!(a.intersection(b), Some(Interval::new(Um(4), Um(10))));
/// assert_eq!(a.length(), Um(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Interval {
    lo: Um,
    hi: Um,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: Um, hi: Um) -> Interval {
        assert!(
            lo <= hi,
            "interval lower bound {lo} exceeds upper bound {hi}"
        );
        Interval { lo, hi }
    }

    /// Creates the interval spanning two endpoints in either order.
    #[must_use]
    pub fn spanning(a: Um, b: Um) -> Interval {
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Lower bound.
    #[must_use]
    pub fn lo(self) -> Um {
        self.lo
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(self) -> Um {
        self.hi
    }

    /// `hi - lo`.
    #[must_use]
    pub fn length(self) -> Um {
        self.hi - self.lo
    }

    /// Whether the interval has zero length.
    #[must_use]
    pub fn is_degenerate(self) -> bool {
        self.lo == self.hi
    }

    /// Whether `v` lies in `[lo, hi]` (closed on both ends).
    #[must_use]
    pub fn contains(self, v: Um) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether `other` lies entirely within `self`.
    #[must_use]
    pub fn contains_interval(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// The overlap with `other`, or `None` if they are disjoint.
    ///
    /// Touching intervals overlap in a degenerate (zero-length) interval.
    #[must_use]
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// The smallest interval covering both `self` and `other`.
    #[must_use]
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanning_orders_endpoints() {
        assert_eq!(
            Interval::spanning(Um(9), Um(2)),
            Interval::new(Um(2), Um(9))
        );
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn new_rejects_inverted() {
        let _ = Interval::new(Um(3), Um(1));
    }

    #[test]
    fn contains_is_closed() {
        let i = Interval::new(Um(2), Um(5));
        assert!(i.contains(Um(2)));
        assert!(i.contains(Um(5)));
        assert!(!i.contains(Um(1)));
        assert!(!i.contains(Um(6)));
    }

    #[test]
    fn intersection_cases() {
        let a = Interval::new(Um(0), Um(10));
        assert_eq!(
            a.intersection(Interval::new(Um(5), Um(15))),
            Some(Interval::new(Um(5), Um(10)))
        );
        // Touching intervals intersect degenerately.
        assert_eq!(
            a.intersection(Interval::new(Um(10), Um(20))),
            Some(Interval::new(Um(10), Um(10)))
        );
        assert_eq!(a.intersection(Interval::new(Um(11), Um(20))), None);
    }

    #[test]
    fn hull_covers_both() {
        let h = Interval::new(Um(0), Um(2)).hull(Interval::new(Um(8), Um(9)));
        assert_eq!(h, Interval::new(Um(0), Um(9)));
    }

    #[test]
    fn degenerate_interval() {
        let d = Interval::new(Um(4), Um(4));
        assert!(d.is_degenerate());
        assert_eq!(d.length(), Um::ZERO);
        assert!(d.contains(Um(4)));
    }

    #[test]
    fn contains_interval() {
        let outer = Interval::new(Um(0), Um(10));
        assert!(outer.contains_interval(Interval::new(Um(2), Um(8))));
        assert!(outer.contains_interval(outer));
        assert!(!outer.contains_interval(Interval::new(Um(2), Um(11))));
    }
}
