//! Property-based tests for the geometry primitives.

use irgrid_geom::{Interval, Point, Rect, Um};
use proptest::prelude::*;

fn arb_um() -> impl Strategy<Value = Um> {
    (-1_000_000i64..1_000_000).prop_map(Um)
}

fn arb_point() -> impl Strategy<Value = Point> {
    (arb_um(), arb_um()).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corner_points(a, b))
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (arb_um(), arb_um()).prop_map(|(a, b)| Interval::spanning(a, b))
}

proptest! {
    #[test]
    fn manhattan_distance_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.manhattan_distance(c) <= a.manhattan_distance(b) + b.manhattan_distance(c));
    }

    #[test]
    fn manhattan_distance_symmetry(a in arb_point(), b in arb_point()) {
        prop_assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        prop_assert_eq!(a.manhattan_distance(a), Um::ZERO);
    }

    #[test]
    fn interval_intersection_commutes(a in arb_interval(), b in arb_interval()) {
        prop_assert_eq!(a.intersection(b), b.intersection(a));
    }

    #[test]
    fn interval_intersection_contained_in_both(a in arb_interval(), b in arb_interval()) {
        if let Some(i) = a.intersection(b) {
            prop_assert!(a.contains_interval(i));
            prop_assert!(b.contains_interval(i));
        }
    }

    #[test]
    fn interval_hull_contains_both(a in arb_interval(), b in arb_interval()) {
        let h = a.hull(b);
        prop_assert!(h.contains_interval(a));
        prop_assert!(h.contains_interval(b));
    }

    #[test]
    fn rect_intersection_commutes(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn rect_intersection_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn rect_hull_contains_both(a in arb_rect(), b in arb_rect()) {
        let h = a.hull(&b);
        prop_assert!(h.contains_rect(&a));
        prop_assert!(h.contains_rect(&b));
    }

    #[test]
    fn rect_area_matches_extents(r in arb_rect()) {
        prop_assert_eq!(r.area(), r.width() * r.height());
        prop_assert!(r.area().0 >= 0);
    }

    #[test]
    fn rect_contains_own_corners_and_center(r in arb_rect()) {
        prop_assert!(r.contains(r.ll()));
        prop_assert!(r.contains(r.ur()));
        prop_assert!(r.contains(r.center()));
    }

    #[test]
    fn routing_range_contains_both_pins(a in arb_point(), b in arb_point()) {
        let range = Rect::from_corner_points(a, b);
        prop_assert!(range.contains(a));
        prop_assert!(range.contains(b));
        // The half-perimeter of the range is the Manhattan distance.
        prop_assert_eq!(range.width() + range.height(), a.manhattan_distance(b));
    }

    #[test]
    fn div_ceil_floor_bracket(v in 0i64..10_000_000, pitch in 1i64..10_000) {
        let v = Um(v);
        let pitch_um = Um(pitch);
        let up = v.div_ceil(pitch_um);
        let down = v.div_floor(pitch_um);
        prop_assert!(down <= up);
        prop_assert!(up - down <= 1);
        prop_assert!(Um(pitch * up) >= v);
        prop_assert!(Um(pitch * down) <= v);
    }
}
