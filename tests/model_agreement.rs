//! Cross-model agreement: the Irregular-Grid estimate must track the
//! fine fixed-grid reference across many floorplans — the property the
//! paper's Experiment 2 demonstrates.

use irgrid::congestion::{CongestionModel, Evaluator, FixedGridModel, IrregularGridModel};
use irgrid::floorplan::{pack, two_pin_segments, PinPlacer, PolishExpr};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Spearman-style rank correlation (ties broken by index, fine for
/// distinct float scores).
fn rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).expect("finite"));
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let (ra, rb) = (rank(a), rank(b));
    let mean = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let (mut da, mut db) = (0.0, 0.0);
    for i in 0..n {
        let (xa, xb) = (ra[i] - mean, rb[i] - mean);
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    num / (da.sqrt() * db.sqrt())
}

/// Generates `count` random floorplans of the circuit and returns
/// per-floorplan scores of the given models.
fn score_random_floorplans(
    bench: McncCircuit,
    count: usize,
    models: &[&dyn CongestionModel],
) -> Vec<Vec<f64>> {
    let circuit = bench.circuit();
    let placer = PinPlacer::new(Um(bench.paper_grid_pitch_um()));
    let mut rng = ChaCha8Rng::seed_from_u64(1234);
    let mut expr = PolishExpr::initial(circuit.modules().len());
    let mut scores = vec![Vec::with_capacity(count); models.len()];
    for _ in 0..count {
        for _ in 0..8 {
            expr.perturb_random(&mut rng);
        }
        let placement = pack(&expr, &circuit);
        let segments = two_pin_segments(&circuit, &placement, &placer);
        for (slot, model) in scores.iter_mut().zip(models) {
            slot.push(model.evaluate(&placement.chip(), &segments));
        }
    }
    scores
}

#[test]
fn irregular_tracks_fine_fixed_grid_ranking() {
    let ir = IrregularGridModel::new(Um(30));
    let judging = FixedGridModel::new(Um(10));
    let scores = score_random_floorplans(McncCircuit::Ami33, 14, &[&ir, &judging]);
    let rho = rank_correlation(&scores[0], &scores[1]);
    assert!(
        rho > 0.5,
        "IR model should rank floorplans like the judging model, rho = {rho}"
    );
}

#[test]
fn exact_and_approximate_evaluators_agree_on_rankings() {
    let approx = IrregularGridModel::new(Um(30));
    let exact = IrregularGridModel::new(Um(30)).with_evaluator(Evaluator::Exact);
    let scores = score_random_floorplans(McncCircuit::Hp, 12, &[&approx, &exact]);
    for (a, e) in scores[0].iter().zip(&scores[1]) {
        let rel = (a - e).abs() / e.max(1e-12);
        assert!(rel < 0.15, "approx {a} vs exact {e} (rel {rel})");
    }
    let rho = rank_correlation(&scores[0], &scores[1]);
    assert!(rho > 0.8, "evaluators disagree on ranking, rho = {rho}");
}

#[test]
fn coarser_fixed_grids_still_correlate_but_less_than_ir() {
    // Figure 9's qualitative claim: the IR model tracks the 10 um judge
    // more closely than a coarse 50 um fixed grid does.
    let ir = IrregularGridModel::new(Um(30));
    let coarse = FixedGridModel::new(Um(50));
    let judging = FixedGridModel::new(Um(10));
    let scores = score_random_floorplans(McncCircuit::Ami33, 14, &[&ir, &coarse, &judging]);
    let rho_ir = rank_correlation(&scores[0], &scores[2]);
    let rho_coarse = rank_correlation(&scores[1], &scores[2]);
    // Both should correlate; the IR model should not be substantially
    // worse than the coarse fixed grid.
    assert!(rho_ir > 0.4, "rho_ir = {rho_ir}");
    assert!(rho_coarse > 0.0, "rho_coarse = {rho_coarse}");
    assert!(
        rho_ir >= rho_coarse - 0.2,
        "IR ({rho_ir}) should track the judge at least as well as 50um fixed ({rho_coarse})"
    );
}

#[test]
fn models_agree_congestion_is_nonnegative_and_finite_everywhere() {
    for bench in [McncCircuit::Apte, McncCircuit::Xerox] {
        let ir = IrregularGridModel::new(Um(bench.paper_grid_pitch_um()));
        let fixed = FixedGridModel::new(Um(50));
        let scores = score_random_floorplans(bench, 4, &[&ir, &fixed]);
        for s in scores.iter().flatten() {
            assert!(s.is_finite() && *s >= 0.0, "{bench}: score {s}");
        }
    }
}
