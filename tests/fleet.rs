//! Integration tests for the fleet orchestrator on the real
//! floorplanning stack, through the `irgrid` facade: worker-count
//! invariance of the whole outcome, pause/cancel + resume bit-identity,
//! and manifest durability.

use std::path::PathBuf;

use irgrid::anneal::{Annealer, CancelToken, Problem, Schedule};
use irgrid::congestion::IrregularGridModel;
use irgrid::fleet::{
    ExchangeMode, Fleet, FleetConfig, FleetManifest, FleetOptions, FleetOutcome, MANIFEST_FILE,
    TELEMETRY_FILE,
};
use irgrid::floorplan::PolishExpr;
use irgrid::floorplanner::{FloorplanSpec, Weights};
use irgrid::geom::Um;
use irgrid::netlist::generator::CircuitGenerator;
use irgrid::netlist::Circuit;
use proptest::prelude::*;

fn test_circuit() -> Circuit {
    CircuitGenerator::new("fleet", 6, 12)
        .total_area_um2(1.0e6)
        .seed(9)
        .generate()
        .expect("valid")
}

fn fleet_config(workers: usize) -> FleetConfig {
    FleetConfig {
        replicas: 3,
        workers,
        seed0: 0,
        sync_every: 8,
        mode: ExchangeMode::Ladder,
        ..FleetConfig::default()
    }
}

/// Runs a routability fleet (congestion term active) on `circuit`.
fn run_floorplan_fleet(
    circuit: &Circuit,
    workers: usize,
    options: &FleetOptions,
) -> FleetOutcome<PolishExpr> {
    let spec: FloorplanSpec<'_, IrregularGridModel> = FloorplanSpec::new(
        circuit,
        Um(30),
        Weights::routability(),
        Some(IrregularGridModel::new(Um(30))),
    )
    .expect("valid spec");
    let fleet =
        Fleet::new(Annealer::new(Schedule::quick()), fleet_config(workers)).expect("valid config");
    fleet.run(|| spec.build(), options).expect("fleet run")
}

/// A fresh scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("irgrid_fleet_it_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn floorplan_fleet_is_bit_identical_across_worker_counts() {
    let circuit = test_circuit();
    let reference = run_floorplan_fleet(&circuit, 1, &FleetOptions::default());
    assert!(reference.complete);
    assert!(!reference.trace.is_empty(), "ladder mode exchanged");

    // The fleet best is the minimum of the per-replica bests.
    let min = reference
        .replicas
        .iter()
        .filter_map(|r| r.best_cost)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(reference.best_cost.to_bits(), min.to_bits());

    for workers in [2, 4] {
        let outcome = run_floorplan_fleet(&circuit, workers, &FleetOptions::default());
        assert!(
            outcome.deterministic_eq(&reference),
            "workers={workers} diverged from the 1-worker reference"
        );
    }
}

#[test]
fn paused_floorplan_fleet_resumes_to_the_uninterrupted_result() {
    let circuit = test_circuit();
    let reference = run_floorplan_fleet(&circuit, 2, &FleetOptions::default());
    let dir = scratch("pause");

    // First invocation: commit one round, then pause.
    let first = run_floorplan_fleet(
        &circuit,
        2,
        &FleetOptions {
            run_dir: Some(dir.clone()),
            pause_after_rounds: Some(1),
            ..FleetOptions::default()
        },
    );
    assert!(!first.complete);
    assert_eq!(first.rounds, 1);
    assert!(dir.join(MANIFEST_FILE).exists());

    // Resume one round at a time — every invocation is a separate
    // "process" seeing only the run directory — until the fleet finishes.
    let mut resumed = first;
    for _ in 0..100 {
        if resumed.complete {
            break;
        }
        resumed = run_floorplan_fleet(
            &circuit,
            2,
            &FleetOptions {
                run_dir: Some(dir.clone()),
                resume: true,
                pause_after_rounds: Some(1),
                ..FleetOptions::default()
            },
        );
    }
    assert!(resumed.complete, "fleet did not finish within 100 rounds");
    assert!(resumed.deterministic_eq(&reference));

    // The JSONL mirror holds exactly one line per telemetry event, even
    // though the history spans many invocations.
    let text = std::fs::read_to_string(dir.join(TELEMETRY_FILE)).expect("telemetry mirror");
    assert_eq!(text.lines().count(), resumed.events.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancelled_floorplan_fleet_resumes_to_the_same_result() {
    let circuit = test_circuit();
    let reference = run_floorplan_fleet(&circuit, 1, &FleetOptions::default());
    let dir = scratch("cancel");

    // Commit two rounds, then stop (the deterministic stand-in for a
    // kill signal between barriers).
    let first = run_floorplan_fleet(
        &circuit,
        2,
        &FleetOptions {
            run_dir: Some(dir.clone()),
            pause_after_rounds: Some(2),
            ..FleetOptions::default()
        },
    );
    assert!(!first.complete);

    // A resume under an already-cancelled token commits nothing.
    let token = CancelToken::new();
    token.cancel();
    let stalled = run_floorplan_fleet(
        &circuit,
        2,
        &FleetOptions {
            run_dir: Some(dir.clone()),
            resume: true,
            cancel: Some(token),
            ..FleetOptions::default()
        },
    );
    assert!(!stalled.complete);
    assert_eq!(stalled.rounds, first.rounds);
    assert!(stalled.deterministic_eq(&first));

    // An unconstrained resume lands on the uninterrupted trajectory.
    let resumed = run_floorplan_fleet(
        &circuit,
        2,
        &FleetOptions {
            run_dir: Some(dir.clone()),
            resume: true,
            ..FleetOptions::default()
        },
    );
    assert!(resumed.complete);
    assert!(resumed.deterministic_eq(&reference));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_manifest_roundtrips_and_validates() {
    let circuit = test_circuit();
    let dir = scratch("manifest");
    let outcome = run_floorplan_fleet(
        &circuit,
        2,
        &FleetOptions {
            run_dir: Some(dir.clone()),
            ..FleetOptions::default()
        },
    );
    assert!(outcome.complete);

    let manifest: FleetManifest<PolishExpr> =
        FleetManifest::read_file(&dir.join(MANIFEST_FILE)).expect("manifest");
    manifest
        .validate(&fleet_config(2), &Schedule::quick())
        .expect("self-consistent");
    assert_eq!(manifest.rounds_done, outcome.rounds);
    assert_eq!(manifest.events, outcome.events);
    assert_eq!(manifest.trace, outcome.trace);

    // The worker count is not part of result identity: a manifest from a
    // 2-worker run validates against any worker count.
    manifest
        .validate(&fleet_config(7), &Schedule::quick())
        .expect("workers ignored by result compatibility");
    std::fs::remove_dir_all(&dir).ok();
}

/// Discrete quadratic bowl — cheap enough for property sweeps.
struct Bowl;

impl Problem for Bowl {
    type State = i64;
    fn initial_state(&self) -> i64 {
        1000
    }
    fn cost(&self, s: &i64) -> f64 {
        ((s - 7) * (s - 7)) as f64
    }
    fn perturb<R: rand::Rng>(&self, s: &mut i64, rng: &mut R) {
        *s += rng.gen_range(-10..=10);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Worker-count invariance holds for arbitrary seeds and exchange
    /// cadences, in both exchange modes.
    #[test]
    fn bowl_fleet_worker_invariance_over_seeds(
        seed0 in 0u64..1_000,
        sync_every in 1usize..10,
        ladder in 0u8..2,
    ) {
        let config = FleetConfig {
            replicas: 4,
            workers: 1,
            seed0,
            sync_every,
            mode: if ladder == 1 { ExchangeMode::Ladder } else { ExchangeMode::Independent },
            ..FleetConfig::default()
        };
        let reference = Fleet::new(Annealer::new(Schedule::quick()), config)
            .expect("valid")
            .run(|| Bowl, &FleetOptions::default())
            .expect("run");
        for workers in [2, 3] {
            let outcome = Fleet::new(
                Annealer::new(Schedule::quick()),
                FleetConfig { workers, ..config },
            )
            .expect("valid")
            .run(|| Bowl, &FleetOptions::default())
            .expect("run");
            prop_assert!(outcome.deterministic_eq(&reference), "workers={}", workers);
        }
    }
}
