//! End-to-end incremental (delta) floorplan evaluation on real MCNC
//! circuits: the delta annealing loop must reproduce the full-cost loop
//! bit for bit when the cost functions coincide (γ = 0), and the
//! propose/commit/undo protocol must stay bit-identical to from-scratch
//! evaluation through long reject/undo chains and repeated moves of the
//! same module.

use irgrid::anneal::{Annealer, DeltaProblem, Problem, Schedule};
use irgrid::congestion::IrregularGridModel;
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn apte_gamma_zero_delta_run_matches_plain_run_bitwise() {
    let circuit = McncCircuit::Apte.circuit();
    let problem = FloorplanProblem::new(
        &circuit,
        Um(60),
        Weights::area_wire(),
        Some(IrregularGridModel::new(Um(60))),
    );
    let annealer = Annealer::new(Schedule::quick());
    for seed in [1, 8] {
        let plain = annealer.run(&problem, seed);
        let delta = annealer.run_delta(&problem, seed);
        assert_eq!(plain.best, delta.best, "seed {seed}");
        assert_eq!(plain.best_cost.to_bits(), delta.best_cost.to_bits());
        assert_eq!(plain.stats, delta.stats);
        assert_eq!(plain.stop_reason, delta.stop_reason);
    }
}

#[test]
fn apte_delta_protocol_survives_reject_chains() {
    // Drive the protocol by hand with mostly-rejected moves: every
    // proposal must match a from-scratch rebase on a second, identical
    // problem, no matter how long the undo chain grows.
    let circuit = McncCircuit::Apte.circuit();
    let make = || {
        FloorplanProblem::new(
            &circuit,
            Um(60),
            Weights::routability(),
            Some(IrregularGridModel::new(Um(60))),
        )
    };
    let incremental = make();
    let scratch = make();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut state = incremental.initial_state();
    let rebased = incremental.rebase(&state);
    assert_eq!(rebased.to_bits(), scratch.rebase(&state).to_bits());
    for step in 0..80 {
        let proposed = incremental.propose(&mut state, &mut rng);
        assert_eq!(
            proposed.to_bits(),
            scratch.rebase(&state).to_bits(),
            "step {step}: incremental cost drifted from from-scratch"
        );
        // Accept only every fifth move: long rejected-move chains.
        if step % 5 == 0 {
            incremental.commit();
        } else {
            incremental.undo(&mut state);
        }
    }
}

#[test]
fn repeated_identical_moves_stay_exact() {
    // Re-propose the *same* move over and over: a fresh identically
    // seeded RNG each iteration makes `propose` perturb the same modules
    // every time — the tightest loop the changed-net diff sees. Alternate
    // reject (undo back to the anchor) and accept (commit, then keep
    // re-proposing the identical move from the new anchor).
    let circuit = McncCircuit::Apte.circuit();
    let make = || {
        FloorplanProblem::new(
            &circuit,
            Um(60),
            Weights::balanced(),
            Some(IrregularGridModel::new(Um(60))),
        )
    };
    let incremental = make();
    let scratch = make();
    let mut state = incremental.initial_state();
    let _ = incremental.rebase(&state);
    for step in 0..24 {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let proposed = incremental.propose(&mut state, &mut rng);
        assert_eq!(
            proposed.to_bits(),
            scratch.rebase(&state).to_bits(),
            "step {step}"
        );
        if step % 6 == 0 {
            incremental.commit();
        } else {
            incremental.undo(&mut state);
        }
    }
}

#[test]
fn ami33_delta_run_improves_and_stays_consistent() {
    let circuit = McncCircuit::Ami33.circuit();
    let problem = FloorplanProblem::new(
        &circuit,
        Um(30),
        Weights::routability(),
        Some(IrregularGridModel::new(Um(30))),
    );
    let initial = problem.rebase(&problem.initial_state());
    let result = Annealer::new(Schedule::quick()).run_delta(&problem, 7);
    assert!(
        result.best_cost < initial,
        "delta annealing failed to improve"
    );
    let eval = problem.evaluate(&result.best);
    assert!(eval.placement.check_consistency().is_none());
}
