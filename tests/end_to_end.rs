//! End-to-end integration: circuit generation → annealing floorplanner
//! with the Irregular-Grid model in the loop → judging with the
//! fixed-grid reference.

use irgrid::anneal::{Annealer, Problem, Schedule};
use irgrid::congestion::{CongestionModel, FixedGridModel, IrregularGridModel};
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::generator::CircuitGenerator;
use irgrid::netlist::mcnc::McncCircuit;

fn quick() -> Annealer {
    Annealer::new(Schedule::quick())
}

#[test]
fn congestion_driven_annealing_improves_all_the_way_down() {
    let circuit = CircuitGenerator::new("e2e", 10, 25)
        .total_area_um2(2.0e6)
        .seed(7)
        .generate()
        .expect("valid circuit");
    let problem = FloorplanProblem::new(
        &circuit,
        Um(30),
        Weights::balanced(),
        Some(IrregularGridModel::new(Um(30))),
    );
    let initial = problem.cost(&problem.initial_state());
    let result = quick().run(&problem, 3);
    assert!(result.best_cost <= initial);
    let eval = problem.evaluate(&result.best);
    assert!(eval.placement.check_consistency().is_none());
    assert!(eval.area_um2 >= circuit.total_module_area().as_f64());
}

#[test]
fn judging_model_scores_any_floorplanner_output() {
    let circuit = McncCircuit::Hp.circuit();
    let problem = FloorplanProblem::new(
        &circuit,
        Um(30),
        Weights::area_wire(),
        None::<IrregularGridModel>,
    );
    let result = quick().run(&problem, 1);
    let eval = problem.evaluate(&result.best);
    let judged = FixedGridModel::judging().evaluate(&eval.placement.chip(), &eval.segments);
    assert!(judged.is_finite());
    assert!(
        judged > 0.0,
        "a packed hp floorplan always has some congestion"
    );
}

#[test]
fn per_temperature_snapshots_flow_through_the_stack() {
    // Experiment 2's extraction path: snapshot states at every
    // temperature and re-evaluate each with a different model afterwards.
    let circuit = CircuitGenerator::new("snap", 8, 18)
        .seed(9)
        .generate()
        .expect("valid circuit");
    let problem = FloorplanProblem::new(
        &circuit,
        Um(30),
        Weights::congestion_only(),
        Some(IrregularGridModel::new(Um(30))),
    );
    let schedule = Schedule {
        snapshot_per_temperature: true,
        ..Schedule::quick()
    };
    let result = Annealer::new(schedule).run(&problem, 5);
    assert!(!result.snapshots.is_empty());
    let judging = FixedGridModel::new(Um(10));
    for snapshot in &result.snapshots {
        let eval = problem.evaluate(&snapshot.best_state);
        let judged = judging.evaluate(&eval.placement.chip(), &eval.segments);
        assert!(judged.is_finite() && judged >= 0.0);
    }
}

#[test]
fn same_seed_same_floorplan_different_seed_usually_differs() {
    let circuit = CircuitGenerator::new("seeds", 9, 20)
        .seed(11)
        .generate()
        .expect("valid circuit");
    let problem = FloorplanProblem::new(
        &circuit,
        Um(30),
        Weights::balanced(),
        Some(IrregularGridModel::new(Um(30))),
    );
    let a = quick().run(&problem, 100);
    let b = quick().run(&problem, 100);
    assert_eq!(a.best, b.best, "same seed must reproduce exactly");
    let c = quick().run(&problem, 101);
    // Different seeds explore differently (costs may coincide, full
    // stats rarely do).
    assert!(
        a.best != c.best || a.stats.accepted != c.stats.accepted,
        "different seeds produced identical runs"
    );
}

#[test]
fn all_benchmarks_run_one_evaluation() {
    for bench in McncCircuit::ALL {
        let circuit = bench.circuit();
        let pitch = Um(bench.paper_grid_pitch_um());
        let problem = FloorplanProblem::new(
            &circuit,
            pitch,
            Weights::balanced(),
            Some(IrregularGridModel::new(pitch)),
        );
        let eval = problem.evaluate(&problem.initial_state());
        assert!(eval.placement.check_consistency().is_none(), "{bench}");
        assert!(eval.cost.is_finite(), "{bench}");
        assert!(eval.congestion > 0.0, "{bench}");
    }
}
