//! Floorplanner-substrate integration: packing validity, pin placement
//! and wirelength consistency maintained across thousands of annealing
//! moves on real benchmark circuits.

use irgrid::floorplan::{
    net_pins, pack, total_wirelength, two_pin_segments, PinPlacer, PolishExpr,
};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;
use irgrid::netlist::mst;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn packing_stays_sound_across_many_moves() {
    let circuit = McncCircuit::Ami33.circuit();
    let mut expr = PolishExpr::initial(circuit.modules().len());
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let lower_bound = circuit.total_module_area();
    for step in 0..400 {
        expr.perturb_random(&mut rng);
        let placement = pack(&expr, &circuit);
        assert!(
            placement.check_consistency().is_none(),
            "step {step}: {:?}",
            placement.check_consistency()
        );
        assert!(placement.area() >= lower_bound, "step {step}");
    }
}

#[test]
fn wirelength_is_sum_of_net_msts() {
    let circuit = McncCircuit::Xerox.circuit();
    let placement = pack(&PolishExpr::initial(circuit.modules().len()), &circuit);
    let placer = PinPlacer::new(Um(30));
    let wl = total_wirelength(&circuit, &placement, &placer);
    let manual: irgrid::geom::Um = net_pins(&circuit, &placement, &placer)
        .iter()
        .map(|pins| mst::mst_length(pins))
        .sum();
    assert_eq!(wl, manual);
}

#[test]
fn segments_stay_inside_chip() {
    let circuit = McncCircuit::Ami49.circuit();
    let mut expr = PolishExpr::initial(circuit.modules().len());
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    for _ in 0..20 {
        expr.perturb_random(&mut rng);
    }
    let placement = pack(&expr, &circuit);
    let placer = PinPlacer::new(Um(30));
    let chip = placement.chip();
    for (a, b) in two_pin_segments(&circuit, &placement, &placer) {
        assert!(chip.contains(a), "pin {a} outside chip {chip}");
        assert!(chip.contains(b), "pin {b} outside chip {chip}");
    }
}

#[test]
fn rotation_bookkeeping_matches_rect_dimensions() {
    let circuit = McncCircuit::Apte.circuit();
    let mut expr = PolishExpr::initial(circuit.modules().len());
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for _ in 0..50 {
        expr.perturb_random(&mut rng);
    }
    let placement = pack(&expr, &circuit);
    for (id, module) in circuit.modules_with_ids() {
        let rect = placement.module_rect(id);
        if placement.is_rotated(id) {
            assert_eq!(rect.width(), module.height(), "{id}");
            assert_eq!(rect.height(), module.width(), "{id}");
        } else {
            assert_eq!(rect.width(), module.width(), "{id}");
            assert_eq!(rect.height(), module.height(), "{id}");
        }
    }
}

#[test]
fn wirelength_reacts_to_floorplan_changes() {
    // Perturbing the expression must change the wirelength at least
    // sometimes — a guard against accidentally caching stale pins.
    let circuit = McncCircuit::Hp.circuit();
    let placer = PinPlacer::new(Um(30));
    let mut expr = PolishExpr::initial(circuit.modules().len());
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut lengths = std::collections::HashSet::new();
    for _ in 0..30 {
        expr.perturb_random(&mut rng);
        let placement = pack(&expr, &circuit);
        lengths.insert(total_wirelength(&circuit, &placement, &placer).0);
    }
    assert!(lengths.len() > 5, "wirelength never changed: {lengths:?}");
}
