//! Integration tests for the fault-tolerance layer: checkpoint/resume
//! bit-identity across the stack, control limits, and cost-validity
//! guards on the real floorplanning problem.

use irgrid::anneal::{
    AnnealError, Annealer, CancelToken, Checkpoint, Problem, RunControl, Schedule, StopReason,
};
use irgrid::congestion::IrregularGridModel;
use irgrid::floorplan::PolishExpr;
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::generator::CircuitGenerator;
use irgrid::netlist::Circuit;
use proptest::prelude::*;

/// Discrete quadratic bowl — cheap enough for wide property sweeps.
struct Bowl;

impl Problem for Bowl {
    type State = i64;
    fn initial_state(&self) -> i64 {
        1000
    }
    fn cost(&self, s: &i64) -> f64 {
        ((s - 7) * (s - 7)) as f64
    }
    fn perturb<R: rand::Rng>(&self, s: &mut i64, rng: &mut R) {
        *s += rng.gen_range(-10..=10);
    }
}

fn test_circuit() -> Circuit {
    CircuitGenerator::new("ft", 8, 16)
        .total_area_um2(1.0e6)
        .seed(3)
        .generate()
        .expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any checkpoint of a Bowl run resumes to exactly the uninterrupted
    /// outcome, for arbitrary seeds and cadences.
    #[test]
    fn bowl_resume_is_bit_identical(seed in 0u64..10_000, cadence in 1usize..9) {
        let annealer = Annealer::new(Schedule::quick());
        let uninterrupted = annealer.run(&Bowl, seed);

        let mut checkpoints = Vec::new();
        let control = RunControl::unlimited().with_checkpoint_every(cadence);
        annealer
            .run_with_checkpoints(&Bowl, seed, &control, |c| checkpoints.push(c.clone()))
            .expect("finite costs");
        prop_assert!(!checkpoints.is_empty());

        for checkpoint in checkpoints {
            let resumed = annealer
                .resume(&Bowl, checkpoint, &RunControl::unlimited())
                .expect("valid checkpoint");
            prop_assert_eq!(resumed.best, uninterrupted.best);
            prop_assert_eq!(resumed.best_cost, uninterrupted.best_cost);
            prop_assert_eq!(resumed.stats, uninterrupted.stats);
            prop_assert_eq!(resumed.stop_reason, uninterrupted.stop_reason);
        }
    }

    /// A move budget always stops with exactly the budgeted number of
    /// proposals, and the partial stats are consistent.
    #[test]
    fn bowl_move_budget_is_exact(seed in 0u64..10_000, budget in 1u64..2_000) {
        let annealer = Annealer::new(Schedule::quick());
        let result = annealer
            .run_controlled(&Bowl, seed, &RunControl::unlimited().with_move_budget(budget))
            .expect("finite costs");
        let proposed = (result.stats.accepted + result.stats.rejected) as u64;
        if result.stop_reason == StopReason::MoveBudget {
            prop_assert_eq!(proposed, budget);
        } else {
            // The schedule finished before the budget ran out.
            prop_assert!(proposed <= budget);
            prop_assert!(result.stop_reason.is_natural());
        }
    }
}

proptest! {
    // Floorplan annealing is ~10⁴ packings per run; keep the sweep narrow.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Checkpoint/resume bit-identity holds on the real floorplanning
    /// problem, through a JSON round-trip of the checkpoint.
    #[test]
    fn floorplan_resume_is_bit_identical(seed in 0u64..1_000) {
        let circuit = test_circuit();
        let problem = FloorplanProblem::new(
            &circuit,
            Um(30),
            Weights::balanced(),
            Some(IrregularGridModel::new(Um(30))),
        );
        let annealer = Annealer::new(Schedule::quick());
        let uninterrupted = annealer.run(&problem, seed);

        let mut middle: Option<String> = None;
        let control = RunControl::unlimited().with_checkpoint_every(7);
        annealer
            .run_with_checkpoints(&problem, seed, &control, |c| {
                if middle.is_none() {
                    middle = Some(c.to_json());
                }
            })
            .expect("finite costs");
        let json = middle.expect("run long enough to checkpoint");
        let checkpoint: Checkpoint<PolishExpr> =
            Checkpoint::from_json(&json).expect("parse");
        let resumed = annealer
            .resume(&problem, checkpoint, &RunControl::unlimited())
            .expect("valid checkpoint");
        prop_assert_eq!(resumed.best, uninterrupted.best);
        prop_assert_eq!(resumed.best_cost, uninterrupted.best_cost);
        prop_assert_eq!(resumed.stats, uninterrupted.stats);
    }
}

#[test]
fn floorplan_run_survives_interrupt_then_resume_to_same_answer() {
    // The headline acceptance scenario: interrupt a floorplan run with a
    // move budget, resume from its last checkpoint, and get the same
    // best/cost/stats as never having been interrupted.
    let circuit = test_circuit();
    let problem = FloorplanProblem::new(
        &circuit,
        Um(30),
        Weights::balanced(),
        Some(IrregularGridModel::new(Um(30))),
    );
    let annealer = Annealer::new(Schedule::quick());
    let uninterrupted = annealer.run(&problem, 11);

    // Interrupt halfway through: strictly fewer moves than the full run,
    // so the budget is guaranteed to trip.
    let total_moves = (uninterrupted.stats.accepted + uninterrupted.stats.rejected) as u64;
    let mut last: Option<Checkpoint<PolishExpr>> = None;
    let control = RunControl::unlimited()
        .with_checkpoint_every(1)
        .with_move_budget(total_moves / 2);
    let interrupted = annealer
        .run_with_checkpoints(&problem, 11, &control, |c| last = Some(c.clone()))
        .expect("finite costs");
    assert_eq!(interrupted.stop_reason, StopReason::MoveBudget);
    let checkpoint = last.expect("checkpointed before the budget ran out");

    let resumed = annealer
        .resume(&problem, checkpoint, &RunControl::unlimited())
        .expect("valid checkpoint");
    assert_eq!(resumed.best, uninterrupted.best);
    assert_eq!(resumed.best_cost, uninterrupted.best_cost);
    assert_eq!(resumed.stats, uninterrupted.stats);
    assert_eq!(resumed.stop_reason, uninterrupted.stop_reason);
}

#[test]
fn cancellation_across_threads_stops_the_floorplanner() {
    let circuit = test_circuit();
    let problem = FloorplanProblem::new(
        &circuit,
        Um(30),
        Weights::balanced(),
        Some(IrregularGridModel::new(Um(30))),
    );
    let token = CancelToken::new();
    let canceller = token.clone();
    // Cancel from another thread while the run is in flight.
    let handle = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(20));
        canceller.cancel();
    });
    let annealer = Annealer::new(Schedule {
        max_temperatures: 100_000,
        min_temperature_ratio: 1e-12,
        ..Schedule::default()
    });
    let result = annealer
        .run_controlled(
            &problem,
            1,
            &RunControl::unlimited().with_cancel_token(token),
        )
        .expect("finite costs");
    handle.join().expect("canceller thread");
    assert_eq!(result.stop_reason, StopReason::Cancelled);
    // The partial result is still a valid floorplan.
    let eval = problem.evaluate(&result.best);
    assert!(eval.placement.check_consistency().is_none());
}

#[test]
fn resume_on_different_problem_diverges_but_never_corrupts() {
    // Resuming with a *different* schedule is refused outright.
    let circuit = test_circuit();
    let problem = FloorplanProblem::new(
        &circuit,
        Um(30),
        Weights::balanced(),
        Some(IrregularGridModel::new(Um(30))),
    );
    let annealer = Annealer::new(Schedule::quick());
    let mut checkpoint: Option<Checkpoint<PolishExpr>> = None;
    let control = RunControl::unlimited().with_checkpoint_every(1);
    annealer
        .run_with_checkpoints(&problem, 5, &control, |c| {
            if checkpoint.is_none() {
                checkpoint = Some(c.clone());
            }
        })
        .expect("finite costs");
    let other = Annealer::new(Schedule::default());
    let err = other
        .resume(
            &problem,
            checkpoint.expect("one checkpoint"),
            &RunControl::unlimited(),
        )
        .unwrap_err();
    assert_eq!(err, AnnealError::ScheduleMismatch);
}

/// A problem that turns NaN after enough perturbations — the floorplan
/// stack's guard behavior, exercised end-to-end through the facade.
struct EventuallyNan;

impl Problem for EventuallyNan {
    type State = u32;
    fn initial_state(&self) -> u32 {
        0
    }
    fn cost(&self, s: &u32) -> f64 {
        if *s > 400 {
            f64::NAN
        } else {
            f64::from(1000 - s)
        }
    }
    fn perturb<R: rand::Rng>(&self, s: &mut u32, rng: &mut R) {
        *s += rng.gen_range(0..=2);
    }
}

#[test]
fn nan_mid_run_reports_cost_error_and_keeps_finite_best() {
    let annealer = Annealer::new(Schedule::quick());
    let result = annealer
        .run_controlled(&EventuallyNan, 3, &RunControl::unlimited())
        .expect("initial cost finite");
    assert_eq!(result.stop_reason, StopReason::CostError);
    assert!(result.best <= 400, "best {} is poisoned", result.best);
    assert!(result.best_cost.is_finite());
}
