//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a compact serialization framework with serde's *surface* — `Serialize`
//! and `Deserialize` traits plus `#[derive(Serialize, Deserialize)]` — but
//! a much simpler contract: every type converts to and from a [`Value`]
//! tree (the JSON data model plus distinct integer kinds), and formats such
//! as `serde_json` print and parse that tree.
//!
//! Fidelity notes:
//!
//! * `f64` values survive a round trip **bit-exactly** (the writer uses
//!   Rust's shortest-roundtrip float formatting; non-finite values are
//!   encoded as strings). This is what annealing checkpoints rely on.
//! * `i128`/`u128` are encoded as decimal strings.
//! * Derived struct encodings are maps keyed by field name; newtype
//!   structs are transparent; tuple structs are sequences; enum unit
//!   variants are strings and payload variants single-entry maps — the
//!   same shapes `serde_json` produces for real serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every serializable type converts
/// through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// A double-precision float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected, and where it went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl Error for DeError {}

/// Types that can convert themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses a value tree into `Self`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] naming the expected shape when the tree does
    /// not match.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---- helpers used by the derive macros -------------------------------

/// Extracts the entries of a [`Value::Map`], or errors naming `ty`.
///
/// # Errors
///
/// Returns a [`DeError`] when `value` is not a map.
pub fn expect_map<'v>(value: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
    match value {
        Value::Map(entries) => Ok(entries),
        other => Err(DeError::new(format!(
            "expected map for {ty}, found {other:?}"
        ))),
    }
}

/// Extracts the elements of a [`Value::Seq`], or errors naming `ty`.
///
/// # Errors
///
/// Returns a [`DeError`] when `value` is not a sequence.
pub fn expect_seq<'v>(value: &'v Value, ty: &str) -> Result<&'v [Value], DeError> {
    match value {
        Value::Seq(items) => Ok(items),
        other => Err(DeError::new(format!(
            "expected sequence for {ty}, found {other:?}"
        ))),
    }
}

/// Deserializes the field `name` out of a derived struct's map.
///
/// # Errors
///
/// Returns a [`DeError`] when the field is missing or has the wrong shape.
pub fn get_field<T: Deserialize>(
    map: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    let value = map
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}` for {ty}")))?;
    T::from_value(value).map_err(|e| DeError::new(format!("field `{name}` of {ty}: {e}")))
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = i64::from_value(value)?;
                <$t>::try_from(wide).map_err(|_| {
                    DeError::new(format!(
                        "{wide} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = u64::from_value(value)?;
                <$t>::try_from(wide).map_err(|_| {
                    DeError::new(format!(
                        "{wide} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32);

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Int(v) => Ok(*v),
            Value::UInt(v) => {
                i64::try_from(*v).map_err(|_| DeError::new(format!("{v} out of range for i64")))
            }
            other => Err(DeError::new(format!("expected integer, found {other:?}"))),
        }
    }
}

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::UInt(v) => Ok(*v),
            Value::Int(v) => {
                u64::try_from(*v).map_err(|_| DeError::new(format!("{v} out of range for u64")))
            }
            other => Err(DeError::new(format!("expected integer, found {other:?}"))),
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let wide = u64::from_value(value)?;
        usize::try_from(wide).map_err(|_| DeError::new(format!("{wide} out of range for usize")))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let wide = i64::from_value(value)?;
        isize::try_from(wide).map_err(|_| DeError::new(format!("{wide} out of range for isize")))
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for i128 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => s
                .parse::<i128>()
                .map_err(|_| DeError::new(format!("`{s}` is not an i128"))),
            Value::Int(v) => Ok(i128::from(*v)),
            Value::UInt(v) => Ok(i128::from(*v)),
            other => Err(DeError::new(format!("expected i128, found {other:?}"))),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => s
                .parse::<u128>()
                .map_err(|_| DeError::new(format!("`{s}` is not a u128"))),
            Value::UInt(v) => Ok(u128::from(*v)),
            Value::Int(v) => {
                u128::try_from(*v).map_err(|_| DeError::new(format!("{v} out of range for u128")))
            }
            other => Err(DeError::new(format!("expected u128, found {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            Value::UInt(v) => Ok(*v as f64),
            // Non-finite floats are encoded as strings.
            Value::Str(s) => s
                .parse::<f64>()
                .map_err(|_| DeError::new(format!("`{s}` is not a float"))),
            other => Err(DeError::new(format!("expected float, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!("expected single char, found `{s}`"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        expect_seq(value, "Vec")?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = expect_seq(value, "tuple")?;
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected tuple of {expected}, found {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<i64> = Deserialize::from_value(&vec![1i64, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let pair: (i64, bool) = Deserialize::from_value(&(5i64, false).to_value()).unwrap();
        assert_eq!(pair, (5, false));
        let big: i128 = Deserialize::from_value(&(1i128 << 100).to_value()).unwrap();
        assert_eq!(big, 1i128 << 100);
    }

    #[test]
    fn option_roundtrip() {
        let none: Option<i64> = Deserialize::from_value(&Option::<i64>::None.to_value()).unwrap();
        assert_eq!(none, None);
        let some: Option<i64> = Deserialize::from_value(&Some(9i64).to_value()).unwrap();
        assert_eq!(some, Some(9));
    }

    #[test]
    fn wrong_shape_is_typed_error() {
        let err = bool::from_value(&Value::Int(1)).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
        let err = i8::from_value(&Value::Int(1000)).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn map_get() {
        let v = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
    }
}
