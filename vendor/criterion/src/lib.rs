//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no crates.io access, so this crate provides a
//! minimal wall-clock harness with the same API shape the workspace's
//! benches use: `Criterion`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. It reports median and min/max per benchmark
//! and does no statistical analysis, warm-up tuning, or HTML reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting
/// benchmarked computations.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Names a benchmark within a group, optionally with a parameter label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `function` measured at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified only by its parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after one
    /// calibration pass that picks an iteration count targeting a few
    /// milliseconds per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find how many iterations fill ~2 ms.
        let mut iters = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(500) || iters >= 1 << 24 {
                break elapsed / (iters as u32).max(1);
            }
            iters *= 8;
        };
        let target = Duration::from_millis(2);
        let per_sample = if per_iter.is_zero() {
            iters
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / (per_sample as u32).max(1));
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn run_one(label: &str, sample_size: usize, mut body: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(2),
    };
    body(&mut bencher);
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    if sorted.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "{label:<50} median {:>12}   [{} .. {}]",
        format_duration(median),
        format_duration(min),
        format_duration(max)
    );
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 30,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.default_sample_size, body);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `body` under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, body: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, body);
        self
    }

    /// Benchmarks `body` with a borrowed input value.
    pub fn bench_with_input<I, F, T: ?Sized>(&mut self, id: I, input: &T, mut body: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            body(b, input)
        });
        self
    }

    /// Ends the group. (No-op beyond matching criterion's API.)
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut criterion = Criterion::default();
        let mut ran = false;
        {
            let mut group = criterion.benchmark_group("smoke");
            group.sample_size(2);
            group.bench_function("noop", |b| {
                ran = true;
                b.iter(|| black_box(1 + 1));
            });
            group.finish();
        }
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_value() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("inputs");
        group.sample_size(2);
        let data = vec![1u32, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u32>())
        });
        group.finish();
    }

    #[test]
    fn id_display() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("ami33").to_string(), "ami33");
    }
}
