//! Offline stand-in for the [`serde_derive`](https://crates.io/crates/serde_derive)
//! crate.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are not
//! available; the derives here parse the item's token stream by hand and
//! emit the trait impls as formatted source text. They cover exactly the
//! shapes this workspace uses:
//!
//! - unit, newtype, tuple, and named-field structs (optionally generic);
//! - enums with unit, tuple, and struct variants.
//!
//! Encodings match the vendored `serde` value model: named structs become
//! maps, newtypes are transparent, tuple structs become sequences, unit
//! enum variants become strings, and payload variants become single-entry
//! maps keyed by the variant name.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Derives `serde::Serialize` (the vendored value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives `serde::Deserialize` (the vendored value-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    /// Generic parameter names, e.g. `["S"]` for `Foo<S>`.
    generics: Vec<String>,
    body: Body,
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(message) => {
            let escaped = message.replace('\\', "\\\\").replace('"', "\\\"");
            return format!("::std::compile_error!(\"{escaped}\");")
                .parse()
                .expect("compile_error tokens");
        }
    };
    let code = match which {
        Trait::Serialize => emit_serialize(&item),
        Trait::Deserialize => emit_deserialize(&item),
    };
    code.parse().expect("generated impl tokens")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attrs_and_vis(&tokens, &mut pos);
    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    if keyword != "struct" && keyword != "enum" {
        return Err(format!(
            "derive only supports structs and enums, found `{keyword}`"
        ));
    }
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    pos += 1;

    let generics = parse_generics(&tokens, &mut pos)?;

    // Skip a `where` clause if present (none of the workspace types use
    // one, but don't silently mis-parse if one appears).
    if let Some(TokenTree::Ident(ident)) = tokens.get(pos) {
        if ident.to_string() == "where" {
            return Err("derive stand-in does not support `where` clauses".to_string());
        }
    }

    let body = if keyword == "enum" {
        match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(group.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        }
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(group.stream())?)
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(group.stream()))
            }
            Some(TokenTree::Punct(punct)) if punct.as_char() == ';' => Body::Unit,
            other => return Err(format!("expected struct body, found {other:?}")),
        }
    };

    Ok(Item {
        name,
        generics,
        body,
    })
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(punct)) if punct.as_char() == '#' => {
                // `#[...]` attribute: skip the pound and the bracket group.
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *pos += 1;
                // `pub(crate)` / `pub(in ...)` restriction.
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `<...>` after the type name, returning type-parameter names.
/// Lifetimes and const parameters are rejected: the serialized types in
/// this workspace are plain data and never borrow.
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Result<Vec<String>, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(punct)) if punct.as_char() == '<' => {}
        _ => return Ok(Vec::new()),
    }
    *pos += 1;

    let mut params = Vec::new();
    let mut depth = 1usize;
    // True at positions where a fresh parameter may start (after `<` or a
    // depth-1 comma); bounds after `:` are skipped until the next comma.
    let mut at_param_start = true;
    while depth > 0 {
        let token = tokens
            .get(*pos)
            .ok_or_else(|| "unbalanced `<` in generics".to_string())?;
        match token {
            TokenTree::Punct(punct) => match punct.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 1 => at_param_start = true,
                '\'' => return Err("derive stand-in does not support lifetimes".to_string()),
                _ => {}
            },
            TokenTree::Ident(ident) if depth == 1 && at_param_start => {
                let text = ident.to_string();
                if text == "const" {
                    return Err("derive stand-in does not support const generics".to_string());
                }
                params.push(text);
                at_param_start = false;
            }
            _ => {}
        }
        *pos += 1;
    }
    Ok(params)
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(punct)) if punct.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        fields.push(name);
        skip_type(&tokens, &mut pos);
    }
    Ok(fields)
}

/// Advances past a type expression, stopping after the comma that follows
/// it (or at end of stream). Tracks `<`/`>` so commas inside generic
/// arguments don't terminate the field early.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(punct) = token {
            match punct.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0usize;
    let mut fields = 1usize;
    let mut last_was_comma = false;
    for token in &tokens {
        last_was_comma = false;
        if let TokenTree::Punct(punct) = token {
            match punct.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    fields += 1;
                    last_was_comma = true;
                }
                _ => {}
            }
        }
    }
    if last_was_comma {
        fields -= 1; // trailing comma
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let body = match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantBody::Tuple(count_tuple_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantBody::Named(parse_named_fields(group.stream())?)
            }
            _ => VariantBody::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if let Some(TokenTree::Punct(punct)) = tokens.get(pos) {
            if punct.as_char() == '=' {
                return Err("derive stand-in does not support explicit discriminants".to_string());
            }
        }
        match tokens.get(pos) {
            Some(TokenTree::Punct(punct)) if punct.as_char() == ',' => pos += 1,
            None => {}
            other => {
                return Err(format!(
                    "expected `,` after variant `{name}`, found {other:?}"
                ))
            }
        }
        variants.push(Variant { name, body });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<S: ::serde::Serialize> ::serde::Serialize for Foo<S>` header parts.
fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let bounds: Vec<String> = item
            .generics
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect();
        let args = item.generics.join(", ");
        (
            format!("<{}>", bounds.join(", ")),
            format!("{}<{}>", item.name, args),
        )
    }
}

fn emit_serialize(item: &Item) -> String {
    let (params, self_ty) = impl_header(item, "Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Body::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.body {
                    VariantBody::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        );
                    }
                    VariantBody::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    VariantBody::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        );
                    }
                    VariantBody::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Map(::std::vec![{}]))]),",
                            entries.join(", ")
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{params} ::serde::Serialize for {self_ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn emit_deserialize(item: &Item) -> String {
    let (params, self_ty) = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => format!(
            "match __value {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\"expected null for unit struct {name}\")),\n\
             }}"
        ),
        Body::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
        ),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "{{\n\
                     let __items = ::serde::expect_seq(__value, \"{name}\")?;\n\
                     if __items.len() != {n}usize {{\n\
                         return ::std::result::Result::Err(::serde::DeError::new(\"wrong tuple arity for {name}\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))\n\
                 }}",
                items.join(", ")
            )
        }
        Body::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::get_field(__map, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "{{\n\
                     let __map = ::serde::expect_map(__value, \"{name}\")?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})\n\
                 }}",
                inits.join(", ")
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.body {
                    VariantBody::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        );
                    }
                    VariantBody::Tuple(1) => {
                        let _ = write!(
                            payload_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?)),"
                        );
                    }
                    VariantBody::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        let _ = write!(
                            payload_arms,
                            "\"{vname}\" => {{\n\
                                 let __items = ::serde::expect_seq(__payload, \"{name}::{vname}\")?;\n\
                                 if __items.len() != {n}usize {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::new(\"wrong tuple arity for {name}::{vname}\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }}",
                            items.join(", ")
                        );
                    }
                    VariantBody::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("{f}: ::serde::get_field(__inner, \"{f}\", \"{name}::{vname}\")?")
                            })
                            .collect();
                        let _ = write!(
                            payload_arms,
                            "\"{vname}\" => {{\n\
                                 let __inner = ::serde::expect_map(__payload, \"{name}::{vname}\")?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                             }}",
                            inits.join(", ")
                        );
                    }
                }
            }
            format!(
                "match __value {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::new(\n\
                             ::std::format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1usize => {{\n\
                         let (__key, __payload) = &__entries[0usize];\n\
                         match __key.as_str() {{\n\
                             {payload_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::new(\n\
                                 ::std::format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::DeError::new(\"expected string or single-entry map for enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{params} ::serde::Deserialize for {self_ty} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
