//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *subset* of the rand 0.8 API it actually uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with `gen`,
//! `gen_range` and `gen_bool`, and uniform sampling over integer and float
//! ranges. The streams produced are *not* byte-compatible with upstream
//! rand — only determinism per seed is guaranteed, which is all the
//! annealing engine's contract requires.
//!
//! Swap this crate back to the real `rand` in `[workspace.dependencies]`
//! when registry access is available; no source changes are needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it to a full seed with
    /// SplitMix64 (the same construction rand_core 0.6 documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the generator's full output
/// range via [`Rng::gen`] (the stand-in for rand's `Standard`
/// distribution).
pub trait SampleStandard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl SampleStandard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl SampleStandard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        <u128 as SampleStandard>::sample(rng) as i128
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over half-open and inclusive ranges.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`. `lo < hi` must hold.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`. `lo <= hi` must hold.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Draws a uniform value below `span` (`span > 0`) without modulo bias.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Rejection sampling on the top zone that divides evenly by `span`.
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let raw = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        if raw <= zone {
            return raw % span;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                let offset = uniform_u128(rng, span);
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = ((hi as $wide).wrapping_sub(lo as $wide) as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return <$t as SampleStandard>::sample(rng);
                }
                let offset = uniform_u128(rng, span);
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8 => u128, u16 => u128, u32 => u128, u64 => u128, u128 => u128,
    usize => u128, i8 => i128, i16 => i128, i32 => i128, i64 => i128, i128 => i128,
    isize => i128);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let unit = <$t as SampleStandard>::sample(rng);
                let v = lo + (hi - lo) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v < hi { v } else { <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON) }
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let unit = <$t as SampleStandard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a standard type (uniform over its full range;
    /// `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        <f64 as SampleStandard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// `rand::rngs` — minimal module for API parity (empty; the workspace
/// uses `rand_chacha` generators exclusively).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic counter "generator" for unit-testing the sampling
    /// plumbing (not random at all).
    struct Step(u64);

    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Step(7);
        for _ in 0..2000 {
            let v = rng.gen_range(-10i64..=10);
            assert!((-10..=10).contains(&v));
            let u = rng.gen_range(0usize..13);
            assert!(u < 13);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let w = rng.gen_range(100i128..10_000_000);
            assert!((100..10_000_000).contains(&w));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = Step(3);
        for _ in 0..2000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Step(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Step(1);
        let _ = rng.gen_range(5i64..5);
    }

    #[test]
    fn rng_works_through_mut_ref() {
        fn takes_generic<R: RngCore>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = Step(9);
        let _ = takes_generic(&mut &mut rng);
    }
}
