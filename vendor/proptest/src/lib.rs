//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests rely on:
//!
//! - the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_flat_map`, ranges, tuples, [`Just`](strategy::Just), unions
//!   (`prop_oneof!`), and [`collection::vec`];
//! - the `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//!   and `prop_oneof!` macros;
//! - [`ProptestConfig`](test_runner::ProptestConfig) with `with_cases`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (the hash of the test's module path and name) so runs are
//! fully deterministic, and failing cases are reported but **not shrunk**.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;

    /// A recipe for producing random values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: a strategy simply
    /// samples a concrete value from an RNG, and failing cases are not
    /// shrunk.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value;

        /// Transforms generated values with `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }

        /// Generates a value, then uses it to pick a second strategy to
        /// draw from (for dependent inputs).
        fn prop_flat_map<S, F>(self, make: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, make }
        }

        /// Boxes this strategy, erasing its concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut ChaCha8Rng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut ChaCha8Rng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut ChaCha8Rng) -> O {
            (self.map)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        make: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut ChaCha8Rng) -> S2::Value {
            (self.make)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut ChaCha8Rng) -> T {
            let choice = rng.gen_range(0..self.options.len());
            self.options[choice].sample(rng)
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: rand::SampleUniform + Copy + PartialOrd,
    {
        type Value = T;

        fn sample(&self, rng: &mut ChaCha8Rng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: rand::SampleUniform + Copy + PartialOrd,
    {
        type Value = T;

        fn sample(&self, rng: &mut ChaCha8Rng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// One element of a parsed string pattern, with its repetition range.
    enum PatternNode {
        /// A fixed character.
        Literal(char),
        /// `.` — any printable ASCII character.
        Any,
        /// `[...]` — one of an explicit character set.
        Class(Vec<char>),
        /// `(a|bc|d)` — one of several literal alternatives.
        Alternation(Vec<String>),
    }

    /// Like real proptest, a `&str` is a strategy generating strings from
    /// a regex-like pattern. Supported subset: literal characters, `.`
    /// (printable ASCII), character classes `[a-z0-9_-]` with ranges,
    /// non-nested literal alternations `(foo|bar)`, repetition `{n}` /
    /// `{m,n}` / `*` / `+` / `?`, and `\\`-escapes. Unsupported syntax
    /// panics with a message naming the pattern.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut ChaCha8Rng) -> String {
            let nodes = parse_pattern(self);
            let mut out = String::new();
            for (node, lo, hi) in &nodes {
                let count = rng.gen_range(*lo..=*hi);
                for _ in 0..count {
                    match node {
                        PatternNode::Literal(c) => out.push(*c),
                        PatternNode::Any => {
                            out.push(char::from(rng.gen_range(0x20u8..=0x7e)));
                        }
                        PatternNode::Class(set) => {
                            out.push(set[rng.gen_range(0..set.len())]);
                        }
                        PatternNode::Alternation(options) => {
                            out.push_str(&options[rng.gen_range(0..options.len())]);
                        }
                    }
                }
            }
            out
        }
    }

    impl Strategy for String {
        type Value = String;

        fn sample(&self, rng: &mut ChaCha8Rng) -> String {
            self.as_str().sample(rng)
        }
    }

    /// Unbounded repetitions (`*`, `+`) are capped here.
    const MAX_UNBOUNDED_REPEAT: usize = 16;

    fn parse_pattern(pattern: &str) -> Vec<(PatternNode, usize, usize)> {
        let unsupported =
            |what: &str| -> ! { panic!("unsupported string pattern `{pattern}`: {what}") };
        let mut nodes: Vec<(PatternNode, usize, usize)> = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let node = match c {
                '.' => PatternNode::Any,
                '\\' => {
                    let escaped = chars
                        .next()
                        .unwrap_or_else(|| unsupported("trailing backslash"));
                    PatternNode::Literal(match escaped {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    })
                }
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        let member = match chars.next() {
                            None => unsupported("unclosed `[`"),
                            Some(']') => break,
                            Some('\\') => chars
                                .next()
                                .unwrap_or_else(|| unsupported("trailing backslash")),
                            Some(other) => other,
                        };
                        // A `-` between two members is a range; elsewhere
                        // it is a literal.
                        if chars.peek() == Some(&'-') {
                            let mut lookahead = chars.clone();
                            lookahead.next();
                            match lookahead.peek() {
                                Some(&end) if end != ']' => {
                                    chars.next();
                                    chars.next();
                                    if member > end {
                                        unsupported("descending class range");
                                    }
                                    set.extend(member..=end);
                                    continue;
                                }
                                _ => {}
                            }
                        }
                        set.push(member);
                    }
                    if set.is_empty() {
                        unsupported("empty character class");
                    }
                    PatternNode::Class(set)
                }
                '(' => {
                    let mut options = vec![String::new()];
                    loop {
                        match chars.next() {
                            None => unsupported("unclosed `(`"),
                            Some(')') => break,
                            Some('|') => options.push(String::new()),
                            Some('(') | Some('[') => unsupported("nested group in alternation"),
                            Some('\\') => {
                                let escaped = chars
                                    .next()
                                    .unwrap_or_else(|| unsupported("trailing backslash"));
                                options.last_mut().expect("non-empty").push(escaped);
                            }
                            Some(other) => options.last_mut().expect("non-empty").push(other),
                        }
                    }
                    PatternNode::Alternation(options)
                }
                ')' | ']' | '|' | '{' | '}' | '*' | '+' | '?' => {
                    unsupported("metacharacter outside a group")
                }
                literal => PatternNode::Literal(literal),
            };
            // An optional repetition suffix.
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
                    let parse = |text: &str| -> usize {
                        text.trim()
                            .parse()
                            .unwrap_or_else(|_| unsupported("bad `{}` count"))
                    };
                    match body.split_once(',') {
                        Some((lo, hi)) => (parse(lo), parse(hi)),
                        None => {
                            let n = parse(&body);
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, MAX_UNBOUNDED_REPEAT)
                }
                Some('+') => {
                    chars.next();
                    (1, MAX_UNBOUNDED_REPEAT)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            if lo > hi {
                unsupported("descending `{}` count");
            }
            nodes.push((node, lo, hi));
        }
        nodes
    }
}

/// Strategies for collections.
pub mod collection {
    use super::strategy::Strategy;
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;

    /// An inclusive range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty proptest size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-case execution: configuration, error plumbing, and the runner the
/// `proptest!` macro expands into.
pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// An input rejection.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    /// Execution knobs for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
        /// Cap on `prop_assume!` rejections across the whole run.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config that requires `cases` passing cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// FNV-1a, used to derive a stable RNG seed from the test name.
    fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in text.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Runs `test` until `config.cases` cases pass. Deterministic: the RNG
    /// seed is derived from `name`, so a failure always reproduces.
    pub fn run_named<F>(name: &str, config: &ProptestConfig, mut test: F)
    where
        F: FnMut(&mut ChaCha8Rng) -> Result<(), TestCaseError>,
    {
        let seed = fnv1a(name);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut passed = 0u32;
        let mut rejects = 0u32;
        while passed < config.cases {
            match test(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest `{name}`: too many prop_assume! rejections \
                             ({rejects}); last: {why}"
                        );
                    }
                }
                Err(TestCaseError::Fail(why)) => {
                    panic!(
                        "proptest `{name}` failed after {passed} passing cases \
                         (seed {seed:#x}, no shrinking): {why}"
                    );
                }
            }
        }
    }
}

/// The standard import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines deterministic property tests.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by any
/// number of `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_named(
                    ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                    &__config,
                    |__rng| {
                        $(
                            let $pat = $crate::strategy::Strategy::sample(&($strategy), __rng);
                        )+
                        let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                            (|| {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                        __out
                    },
                );
            }
        )*
    };
}

/// Fails the current case (without panicking immediately) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, showing both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` == `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __left,
            __right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// `prop_assert!` for inequality, showing both values on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __left,
            __right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (re-drawn, not counted) when the condition is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::concat!("assumption failed: ", ::std::stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (5i64..400).sample(&mut rng);
            assert!((5..400).contains(&v));
            let w = (2usize..=12).sample(&mut rng);
            assert!((2..=12).contains(&w));
            let f = (0.0f64..100.0).sample(&mut rng);
            assert!((0.0..100.0).contains(&f));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let strat = prop::collection::vec(0u32..10, 3..=7);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((3..=7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn macro_basics((a, b) in (0i64..100, 0i64..100), scale in 1i64..=4) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(scale * (a + b), scale * a + scale * b);
        }

        fn flat_map_dependent_inputs(
            (lo, hi) in (0i64..50).prop_flat_map(|lo| (Just(lo), (lo + 1)..51)),
        ) {
            prop_assert!(lo < hi);
        }

        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        fn oneof_and_collections(
            choice in prop_oneof![Just(1u8), Just(2u8)],
            items in prop::collection::vec(0i64..5, 1..4),
        ) {
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!(!items.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = (0i64..1000).prop_map(|v| v * 2);
        let mut a = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let mut b = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_case_panics_with_context() {
        crate::test_runner::run_named("demo::always_fails", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn string_patterns_generate_matching_text() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for _ in 0..50 {
            let any = ".{0,5}".sample(&mut rng);
            assert!(any.len() <= 5);
            assert!(any.chars().all(|c| (' '..='~').contains(&c)), "{any:?}");

            let word = "[a-c0-1]{2,4}".sample(&mut rng);
            assert!((2..=4).contains(&word.len()));
            assert!(word.chars().all(|c| "abc01".contains(c)), "{word:?}");

            let keyword = "(module|net)".sample(&mut rng);
            assert!(keyword == "module" || keyword == "net", "{keyword:?}");

            let mixed = "ab?c+".sample(&mut rng);
            assert!(mixed.starts_with('a'), "{mixed:?}");
            assert!(mixed.ends_with('c'), "{mixed:?}");

            let dash = "[a-z-]{1,3}".sample(&mut rng);
            assert!(
                dash.chars().all(|c| c == '-' || c.is_ascii_lowercase()),
                "{dash:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unsupported string pattern")]
    fn unsupported_pattern_syntax_panics() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let _ = "a(b(c))".sample(&mut rng);
    }
}
