//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: JSON text over the vendored `serde` value tree.
//!
//! Numbers keep their integer/float distinction (`Int`/`UInt`/`Float`),
//! floats print with Rust's shortest-roundtrip formatting so a value
//! survives a write/read cycle bit-exactly, and non-finite floats (which
//! JSON cannot express) are written as the strings `"NaN"`, `"inf"`, and
//! `"-inf"` — the vendored `serde` parses those back into `f64`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error produced while printing or parsing JSON.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    /// 1-based line of the parse failure, 0 for non-parse errors.
    line: usize,
    /// 1-based column of the parse failure, 0 for non-parse errors.
    column: usize,
}

impl Error {
    fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
            line: 0,
            column: 0,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.message, self.line, self.column
            )
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(err: serde::DeError) -> Self {
        Error::msg(err.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
///
/// Mirrors `serde_json::to_value`; the `Result` wrapper exists only for
/// signature compatibility — this implementation cannot fail.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Builds a [`Value`] from JSON-ish literal syntax.
///
/// Supports the subset this workspace uses: `null`, object literals with
/// literal keys, array literals, and arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $( (::std::string::String::from($key), $crate::json!($value)) ),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $( $crate::json!($value) ),* ])
    };
    ($other:expr) => { $crate::value_of(&$other) };
}

/// Implementation detail of [`json!`]; converts a reference into a value.
#[doc(hidden)]
pub fn value_of<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => {
            out.push_str(&v.to_string());
        }
        Value::UInt(v) => {
            out.push_str(&v.to_string());
        }
        Value::Float(v) => write_float(out, *v),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "\"inf\"" } else { "\"-inf\"" });
    } else {
        // `{:?}` is Rust's shortest representation that parses back to the
        // same bits, and always keeps a `.0` or exponent so the value stays
        // recognizably a float.
        let text = format!("{v:?}");
        out.push_str(&text);
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos < parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> Error {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Error {
            message: message.into(),
            line,
            column,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a `\uXXXX` low surrogate
                                // must follow.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid utf-8 in string"))?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let value = json!({
            "name": "block_a",
            "count": 3i64,
            "ratio": 0.1f64,
            "flags": [true, false],
            "nothing": Option::<i64>::None,
        });
        let text = to_string(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(format!("{value:?}"), format!("{back:?}"));
    }

    #[test]
    fn float_bits_survive_roundtrip() {
        for &v in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.5e-300,
            12345.678901234567,
        ] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "value {v}");
        }
    }

    #[test]
    fn non_finite_floats_as_strings() {
        let text = to_string(&f64::NAN).unwrap();
        assert_eq!(text, "\"NaN\"");
        let back: f64 = from_str(&text).unwrap();
        assert!(back.is_nan());

        let text = to_string(&f64::NEG_INFINITY).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, f64::NEG_INFINITY);
    }

    #[test]
    fn pretty_output_parses_back() {
        let inner = json!({"k": "v"});
        let value = json!({"outer": [1i64, 2i64], "inner": inner});
        let text = to_string_pretty(&value).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(format!("{value:?}"), format!("{back:?}"));
    }

    #[test]
    fn string_escapes() {
        let original = "line1\nline2\t\"quoted\" \\ unicode: \u{1F600} \u{0007}";
        let text = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(original, back);
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = from_str::<Value>("{\"a\": }").unwrap_err();
        let shown = err.to_string();
        assert!(shown.contains("line 1"), "{shown}");
    }

    #[test]
    fn integers_keep_type() {
        let value: Value = from_str("[-3, 18446744073709551615, 2.0]").unwrap();
        match &value {
            Value::Seq(items) => {
                assert!(matches!(items[0], Value::Int(-3)));
                assert!(matches!(items[1], Value::UInt(u64::MAX)));
                assert!(matches!(items[2], Value::Float(v) if v == 2.0));
            }
            other => panic!("expected seq, got {other:?}"),
        }
    }
}
