//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate: a genuine ChaCha8 block cipher driven as a PRNG.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the one generator it uses, [`ChaCha8Rng`]. The keystream is a faithful
//! ChaCha8 (8 rounds, RFC 7539 state layout with a 64-bit block counter),
//! but `seed_from_u64` expands seeds with SplitMix64 like rand_core 0.6, so
//! streams are deterministic per seed while not byte-compatible with
//! upstream `rand_chacha`.
//!
//! With the `serde1` feature (on by default in this workspace) the full
//! generator state — seed, block counter, and intra-block position —
//! serializes losslessly, which is what gives annealing checkpoints
//! bit-identical resume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;

/// A ChaCha8-based pseudo-random generator with serializable state.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    seed: [u8; 32],
    /// The counter of the *next* block to generate.
    counter: u64,
    /// Current keystream block; invalid when `index == WORDS_PER_BLOCK`.
    buffer: [u32; WORDS_PER_BLOCK],
    /// Next unread word within `buffer`.
    index: usize,
}

impl PartialEq for ChaCha8Rng {
    fn eq(&self, other: &Self) -> bool {
        // Equality of logical stream position, not internal scratch.
        self.seed == other.seed && self.counter == other.counter && self.index == other.index
    }
}

impl Eq for ChaCha8Rng {}

#[inline(always)]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha8_block(seed: &[u8; 32], counter: u64) -> [u32; WORDS_PER_BLOCK] {
    let mut state = [0u32; WORDS_PER_BLOCK];
    // "expand 32-byte k"
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for (i, chunk) in seed.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    // Words 14/15 (nonce) stay zero: one stream per seed.
    let initial = state;
    for _ in 0..4 {
        // A double round: 4 column + 4 diagonal quarter rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial) {
        *word = word.wrapping_add(init);
    }
    state
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        self.buffer = chacha8_block(&self.seed, self.counter);
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// The seed this generator was created from.
    #[must_use]
    pub fn get_seed(&self) -> [u8; 32] {
        self.seed
    }

    /// Number of 32-bit words consumed so far (the logical stream
    /// position).
    #[must_use]
    pub fn word_pos(&self) -> u128 {
        let blocks_done = if self.index == WORDS_PER_BLOCK {
            u128::from(self.counter)
        } else {
            u128::from(self.counter).saturating_sub(1)
        };
        blocks_done * WORDS_PER_BLOCK as u128 + (self.index % WORDS_PER_BLOCK) as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        ChaCha8Rng {
            seed,
            counter: 0,
            buffer: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index == WORDS_PER_BLOCK {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

#[cfg(feature = "serde1")]
mod serde_impls {
    use super::{chacha8_block, ChaCha8Rng, WORDS_PER_BLOCK};
    use serde::{DeError, Deserialize, Serialize, Value};

    impl Serialize for ChaCha8Rng {
        fn to_value(&self) -> Value {
            Value::Map(vec![
                (
                    "seed".to_string(),
                    Value::Seq(
                        self.seed
                            .iter()
                            .map(|&b| Value::UInt(u64::from(b)))
                            .collect(),
                    ),
                ),
                ("counter".to_string(), Value::UInt(self.counter)),
                ("index".to_string(), Value::UInt(self.index as u64)),
            ])
        }
    }

    impl Deserialize for ChaCha8Rng {
        fn from_value(value: &Value) -> Result<Self, DeError> {
            let map = serde::expect_map(value, "ChaCha8Rng")?;
            let seed_words: Vec<u64> = serde::get_field(map, "seed", "ChaCha8Rng")?;
            let seed_bytes: Result<Vec<u8>, _> = seed_words
                .iter()
                .map(|&w| u8::try_from(w).map_err(|_| DeError::new("seed byte out of range")))
                .collect();
            let seed_bytes = seed_bytes?;
            let seed: [u8; 32] = seed_bytes
                .try_into()
                .map_err(|_| DeError::new("ChaCha8Rng seed must be 32 bytes"))?;
            let counter: u64 = serde::get_field(map, "counter", "ChaCha8Rng")?;
            let index_u64: u64 = serde::get_field(map, "index", "ChaCha8Rng")?;
            let index = usize::try_from(index_u64)
                .ok()
                .filter(|&i| i <= WORDS_PER_BLOCK)
                .ok_or_else(|| DeError::new("ChaCha8Rng index out of range"))?;
            if index < WORDS_PER_BLOCK && counter == 0 {
                return Err(DeError::new(
                    "ChaCha8Rng state inconsistent: mid-block position with no block generated",
                ));
            }
            let buffer = if index < WORDS_PER_BLOCK {
                // The active block was generated with the previous counter.
                chacha8_block(&seed, counter - 1)
            } else {
                [0; WORDS_PER_BLOCK]
            };
            Ok(ChaCha8Rng {
                seed,
                counter,
                buffer,
                index,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chacha_quarter_round_rfc7539_vector() {
        // RFC 7539 §2.1.1 test vector for the quarter round.
        let mut state = [0u32; WORDS_PER_BLOCK];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }

    #[test]
    fn uniformish_output() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..37 {
            rng.next_u32();
        }
        let mut copy = rng.clone();
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), copy.next_u64());
        }
    }

    #[cfg(feature = "serde1")]
    #[test]
    fn serde_roundtrip_mid_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..23 {
            rng.next_u32();
        }
        let value = serde::Serialize::to_value(&rng);
        let mut restored: ChaCha8Rng = serde::Deserialize::from_value(&value).expect("roundtrip");
        for _ in 0..200 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[cfg(feature = "serde1")]
    #[test]
    fn serde_roundtrip_fresh() {
        let rng = ChaCha8Rng::seed_from_u64(1);
        let value = serde::Serialize::to_value(&rng);
        let mut restored: ChaCha8Rng = serde::Deserialize::from_value(&value).expect("roundtrip");
        let mut original = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(original.next_u32(), restored.next_u32());
        }
    }
}
