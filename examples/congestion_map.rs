//! Congestion heat map: anneal a benchmark briefly, then render the
//! Irregular-Grid congestion map as ASCII art next to the fixed-grid
//! map at the same pitch, and dump both as JSON.
//!
//! Run with: `cargo run --release --example congestion_map [circuit]`
//! where `circuit` is one of apte, xerox, hp, ami33 (default), ami49.

use irgrid::anneal::{Annealer, Schedule};
use irgrid::congestion::{FixedGridModel, IrregularGridModel};
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;

const SHADES: [char; 7] = [' ', '.', ':', '+', '*', '#', '@'];

fn shade(value: f64, peak: f64) -> char {
    if peak <= 0.0 {
        return SHADES[0];
    }
    let idx = ((value / peak) * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[idx.min(SHADES.len() - 1)]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ami33".into());
    let bench = McncCircuit::from_name(&name)
        .ok_or_else(|| format!("unknown circuit `{name}` (try apte/xerox/hp/ami33/ami49)"))?;
    let circuit = bench.circuit();
    let pitch = Um(bench.paper_grid_pitch_um());
    println!("annealing {circuit} at pitch {pitch}...");

    let problem = FloorplanProblem::new(
        &circuit,
        pitch,
        Weights::balanced(),
        Some(IrregularGridModel::new(pitch)),
    );
    let result = Annealer::new(Schedule::quick()).run(&problem, 1);
    let eval = problem.evaluate(&result.best);
    println!(
        "best floorplan: {:.2} mm^2, wirelength {:.0} um, IR cost {:.4}",
        eval.area_um2 / 1e6,
        eval.wirelength_um,
        eval.congestion
    );

    // Irregular-Grid map, width-proportional ASCII rendering.
    let ir_map =
        IrregularGridModel::new(pitch).congestion_map(&eval.placement.chip(), &eval.segments);
    let peak = ir_map.peak_density();
    println!(
        "\nIrregular-Grid map ({} x {} IR-grids, peak density {:.3}):",
        ir_map.ir_cols(),
        ir_map.ir_rows(),
        peak
    );
    for j in (0..ir_map.ir_rows()).rev() {
        let mut line = String::new();
        for i in 0..ir_map.ir_cols() {
            // Repeat the shade proportionally to the IR-grid's width so
            // the picture keeps the chip's geometry.
            let width_cells = (ir_map.x_cuts()[i + 1] - ir_map.x_cuts()[i]).max(1) as usize;
            let c = shade(ir_map.density(i, j), peak);
            line.extend(std::iter::repeat(c).take(width_cells.min(60)));
        }
        println!("  |{line}|");
    }

    // Fixed-grid map at the same pitch for comparison (coarser than the
    // 10 um judging model so it fits a terminal).
    let fixed_map =
        FixedGridModel::new(pitch).congestion_map(&eval.placement.chip(), &eval.segments);
    let grid = *fixed_map.grid();
    let peak = fixed_map.peak();
    println!(
        "\nfixed-grid map ({} x {} grids, peak {:.3}):",
        grid.cols(),
        grid.rows(),
        peak
    );
    for y in (0..grid.rows()).rev() {
        let mut line = String::new();
        for x in 0..grid.cols() {
            line.push(shade(fixed_map.value(x, y), peak));
        }
        println!("  |{line}|");
    }

    // Machine-readable dump.
    let dump = serde_json::json!({
        "circuit": bench.name(),
        "chip_um": [eval.placement.chip().width().0, eval.placement.chip().height().0],
        "ir_cost": ir_map.cost(),
        "fixed_cost": fixed_map.cost(),
        "ir_cells": ir_map.ir_cell_count(),
        "fixed_cells": fixed_map.cell_count(),
        "x_cuts": ir_map.x_cuts(),
        "y_cuts": ir_map.y_cuts(),
    });
    let path = std::env::temp_dir().join(format!("irgrid_map_{}.json", bench.name()));
    std::fs::write(&path, serde_json::to_string_pretty(&dump)?)?;
    println!("\nwrote {}", path.display());
    Ok(())
}
