//! Non-slicing floorplanning: anneal the same benchmark with the paper's
//! slicing representation (normalized Polish expressions) and with
//! sequence pairs, both driven by the Irregular-Grid congestion model —
//! demonstrating that the model is representation-agnostic.
//!
//! Run with:
//! `cargo run --release --example nonslicing_floorplan [circuit] [seed]`

use std::time::Instant;

use irgrid::anneal::{Annealer, Schedule};
use irgrid::congestion::{CongestionModel, FixedGridModel, IrregularGridModel};
use irgrid::floorplan::{PolishExpr, SequencePair};
use irgrid::floorplanner::{FloorplanEval, FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;

fn report(label: &str, eval: &FloorplanEval, judged: f64, seconds: f64) {
    println!(
        "{label:<28} area {:>7.3} mm^2, wire {:>9.0} um, IR cgt {:>7.4}, judged {:>9.6}, {:>5.1} s",
        eval.area_um2 / 1e6,
        eval.wirelength_um,
        eval.congestion,
        judged,
        seconds
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ami33".into());
    let seed: u64 = std::env::args().nth(2).map_or(Ok(7), |s| s.parse())?;
    let bench = McncCircuit::from_name(&name)
        .ok_or_else(|| format!("unknown circuit `{name}` (try apte/xerox/hp/ami33/ami49)"))?;
    let circuit = bench.circuit();
    let pitch = Um(bench.paper_grid_pitch_um());
    let judging = FixedGridModel::judging();
    let annealer = Annealer::new(Schedule::quick());
    println!("{circuit}, pitch {pitch}, seed {seed}\n");

    // Slicing (the paper's representation).
    let slicing: FloorplanProblem<'_, IrregularGridModel, PolishExpr> =
        FloorplanProblem::with_representation(
            &circuit,
            pitch,
            Weights::routability(),
            Some(IrregularGridModel::new(pitch)),
        );
    let t = Instant::now();
    let result = annealer.run(&slicing, seed);
    let eval = slicing.evaluate(&result.best);
    let judged = judging.evaluate(&eval.placement.chip(), &eval.segments);
    report(
        "Polish expression (slicing)",
        &eval,
        judged,
        t.elapsed().as_secs_f64(),
    );

    // Sequence pair (non-slicing).
    let seqpair: FloorplanProblem<'_, IrregularGridModel, SequencePair> =
        FloorplanProblem::with_representation(
            &circuit,
            pitch,
            Weights::routability(),
            Some(IrregularGridModel::new(pitch)),
        );
    let t = Instant::now();
    let result = annealer.run(&seqpair, seed);
    let eval = seqpair.evaluate(&result.best);
    let judged = judging.evaluate(&eval.placement.chip(), &eval.segments);
    report(
        "sequence pair (non-slicing)",
        &eval,
        judged,
        t.elapsed().as_secs_f64(),
    );

    println!("\nboth floorplanners share the cost function and congestion model;");
    println!("only the move set / packing differ.");
    Ok(())
}
