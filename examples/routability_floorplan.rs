//! Routability-driven floorplanning (the paper's Experiment 1 in
//! miniature): anneal a benchmark once with area+wirelength only and once
//! with the Irregular-Grid congestion term added, then judge both
//! solutions with the 10 µm fixed-grid judging model.
//!
//! Run with:
//! `cargo run --release --example routability_floorplan [circuit] [seed]`

use std::time::Instant;

use irgrid::anneal::{Annealer, Schedule};
use irgrid::congestion::{CongestionModel, FixedGridModel, IrregularGridModel};
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hp".into());
    let seed: u64 = std::env::args().nth(2).map_or(Ok(1), |s| s.parse())?;
    let bench = McncCircuit::from_name(&name)
        .ok_or_else(|| format!("unknown circuit `{name}` (try apte/xerox/hp/ami33/ami49)"))?;
    let circuit = bench.circuit();
    let pitch = Um(bench.paper_grid_pitch_um());
    let judging = FixedGridModel::judging();
    let annealer = Annealer::new(Schedule::quick());

    println!("circuit {circuit}, pitch {pitch}, seed {seed}\n");

    // Floorplanner A: area + wirelength only.
    let problem_aw = FloorplanProblem::new(
        &circuit,
        pitch,
        Weights::area_wire(),
        None::<IrregularGridModel>,
    );
    let t = Instant::now();
    let result_aw = annealer.run(&problem_aw, seed);
    let time_aw = t.elapsed();
    let eval_aw = problem_aw.evaluate(&result_aw.best);
    let judged_aw = judging.evaluate(&eval_aw.placement.chip(), &eval_aw.segments);

    // Floorplanner B: area + wirelength + IR-grid congestion.
    let problem_cgt = FloorplanProblem::new(
        &circuit,
        pitch,
        Weights::balanced(),
        Some(IrregularGridModel::new(pitch)),
    );
    let t = Instant::now();
    let result_cgt = annealer.run(&problem_cgt, seed);
    let time_cgt = t.elapsed();
    let eval_cgt = problem_cgt.evaluate(&result_cgt.best);
    let judged_cgt = judging.evaluate(&eval_cgt.placement.chip(), &eval_cgt.segments);

    println!(
        "{:<28} {:>12} {:>14} {:>10} {:>12}",
        "floorplanner", "area (mm^2)", "wire (um)", "time (s)", "judging cgt"
    );
    println!(
        "{:<28} {:>12.2} {:>14.0} {:>10.2} {:>12.6}",
        "area+wire",
        eval_aw.area_um2 / 1e6,
        eval_aw.wirelength_um,
        time_aw.as_secs_f64(),
        judged_aw
    );
    println!(
        "{:<28} {:>12.2} {:>14.0} {:>10.2} {:>12.6}",
        "area+wire+IR congestion",
        eval_cgt.area_um2 / 1e6,
        eval_cgt.wirelength_um,
        time_cgt.as_secs_f64(),
        judged_cgt
    );
    let improvement = 100.0 * (judged_aw - judged_cgt) / judged_aw.max(f64::MIN_POSITIVE);
    println!("\njudged congestion improvement: {improvement:.2}%");
    println!(
        "area penalty: {:+.2}%, wirelength change: {:+.2}%",
        100.0 * (eval_cgt.area_um2 - eval_aw.area_um2) / eval_aw.area_um2,
        100.0 * (eval_cgt.wirelength_um - eval_aw.wirelength_um)
            / eval_aw.wirelength_um.max(f64::MIN_POSITIVE),
    );
    Ok(())
}
