//! Interrupt an annealing floorplan run, checkpoint it to disk, and
//! resume it bit-identically.
//!
//! ```text
//! cargo run -p irgrid --example checkpoint_resume
//! ```

use irgrid::anneal::{Annealer, Checkpoint, RunControl, Schedule, StopReason};
use irgrid::congestion::IrregularGridModel;
use irgrid::floorplan::PolishExpr;
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = McncCircuit::Apte.circuit();
    let problem = FloorplanProblem::try_new(
        &circuit,
        Um(30),
        Weights::balanced(),
        Some(IrregularGridModel::new(Um(30))),
    )?;
    let annealer = Annealer::try_new(Schedule::quick())?;
    let seed = 7;

    // The reference: one uninterrupted run.
    let uninterrupted = annealer.run_controlled(&problem, seed, &RunControl::unlimited())?;
    println!(
        "uninterrupted: best cost {:.6}, {} temperature steps, stopped: {}",
        uninterrupted.best_cost, uninterrupted.stats.temperatures, uninterrupted.stop_reason
    );

    // The same run, interrupted by a move budget. Checkpoints go to disk
    // every 5 temperature steps; a real deployment would set a deadline or
    // wire the CancelToken to a signal handler instead.
    let path = std::env::temp_dir().join("irgrid_example.ckpt.json");
    let control = RunControl::unlimited()
        .with_checkpoint_every(5)
        .with_move_budget(1_200);
    let interrupted = annealer.run_with_checkpoints(&problem, seed, &control, |checkpoint| {
        if let Err(err) = checkpoint.write_file(&path) {
            eprintln!("warning: {err}");
        }
    })?;
    assert_eq!(interrupted.stop_reason, StopReason::MoveBudget);
    println!(
        "interrupted:   best cost {:.6} after {} steps, stopped: {}",
        interrupted.best_cost, interrupted.stats.temperatures, interrupted.stop_reason
    );

    // Resume from the file — in a fresh process this is all you need.
    let checkpoint: Checkpoint<PolishExpr> = Checkpoint::read_file(&path)?;
    println!(
        "resuming from step {} (temperature {:.4})...",
        checkpoint.steps_done, checkpoint.temperature
    );
    let resumed = annealer.resume(&problem, checkpoint, &RunControl::unlimited())?;
    println!(
        "resumed:       best cost {:.6}, {} temperature steps, stopped: {}",
        resumed.best_cost, resumed.stats.temperatures, resumed.stop_reason
    );

    assert_eq!(resumed.best, uninterrupted.best);
    assert_eq!(resumed.best_cost, uninterrupted.best_cost);
    assert_eq!(resumed.stats, uninterrupted.stats);
    println!("resumed run is bit-identical to the uninterrupted run");

    std::fs::remove_file(&path).ok();
    Ok(())
}
