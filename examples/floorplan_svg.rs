//! Render a benchmark floorplan and its congestion maps to SVG files —
//! the pictures of the paper's figures 3–5, generated from live data.
//!
//! Run with: `cargo run --release --example floorplan_svg [circuit] [outdir]`

use irgrid::anneal::{Annealer, Schedule};
use irgrid::congestion::{FixedGridModel, IrregularGridModel};
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;
use irgrid::viz;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ami33".into());
    let outdir = std::env::args()
        .nth(2)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let bench = McncCircuit::from_name(&name)
        .ok_or_else(|| format!("unknown circuit `{name}` (try apte/xerox/hp/ami33/ami49)"))?;
    let circuit = bench.circuit();
    let pitch = Um(bench.paper_grid_pitch_um());

    println!("annealing {circuit}...");
    let problem = FloorplanProblem::new(
        &circuit,
        pitch,
        Weights::routability(),
        Some(IrregularGridModel::new(pitch)),
    );
    let result = Annealer::new(Schedule::quick()).run(&problem, 3);
    let eval = problem.evaluate(&result.best);

    let placement_path = outdir.join(format!("{}_floorplan.svg", bench.name()));
    std::fs::write(
        &placement_path,
        viz::placement_svg(&circuit, &eval.placement),
    )?;
    println!("wrote {}", placement_path.display());

    let ir_map =
        IrregularGridModel::new(pitch).congestion_map(&eval.placement.chip(), &eval.segments);
    let ir_path = outdir.join(format!("{}_ir_congestion.svg", bench.name()));
    std::fs::write(
        &ir_path,
        viz::ir_congestion_svg(&circuit, &eval.placement, &ir_map),
    )?;
    println!(
        "wrote {} ({} IR-grids, cost {:.4})",
        ir_path.display(),
        ir_map.ir_cell_count(),
        ir_map.cost()
    );

    let fixed_map =
        FixedGridModel::new(pitch).congestion_map(&eval.placement.chip(), &eval.segments);
    let fixed_path = outdir.join(format!("{}_fixed_congestion.svg", bench.name()));
    std::fs::write(
        &fixed_path,
        viz::fixed_congestion_svg(&circuit, &eval.placement, &fixed_map),
    )?;
    println!(
        "wrote {} ({} grids, cost {:.4})",
        fixed_path.display(),
        fixed_map.cell_count(),
        fixed_map.cost()
    );
    Ok(())
}
