//! Model comparison: score one floorplan with the fixed-size-grid model
//! at several pitches and with the Irregular-Grid model (approximate and
//! exact evaluators), reporting cell counts, costs and evaluation times —
//! the trade-off the paper's figure 3/4 motivates and Experiment 3
//! quantifies.
//!
//! Run with: `cargo run --release --example model_comparison [circuit]`

use std::time::Instant;

use irgrid::anneal::{Annealer, Schedule};
use irgrid::congestion::{Evaluator, FixedGridModel, IrregularGridModel, LzShapeModel};
use irgrid::floorplanner::{FloorplanProblem, Weights};
use irgrid::geom::Um;
use irgrid::netlist::mcnc::McncCircuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ami33".into());
    let bench = McncCircuit::from_name(&name)
        .ok_or_else(|| format!("unknown circuit `{name}` (try apte/xerox/hp/ami33/ami49)"))?;
    let circuit = bench.circuit();
    let pitch = Um(bench.paper_grid_pitch_um());

    // Get a reasonable floorplan first.
    let problem = FloorplanProblem::new(
        &circuit,
        pitch,
        Weights::area_wire(),
        None::<IrregularGridModel>,
    );
    let result = Annealer::new(Schedule::quick()).run(&problem, 3);
    let eval = problem.evaluate(&result.best);
    let chip = eval.placement.chip();
    let segments = &eval.segments;
    println!(
        "{}: chip {:.2} mm^2, {} segments\n",
        bench,
        chip.area().as_mm2(),
        segments.len()
    );

    println!(
        "{:<34} {:>8} {:>12} {:>12}",
        "model", "cells", "cost", "eval (ms)"
    );

    // Fixed-size grids at several pitches (repeat evaluations to get a
    // stable timing).
    for p in [100i64, 50, 30, 10] {
        let model = FixedGridModel::new(Um(p));
        let t = Instant::now();
        let reps = if p >= 50 { 20 } else { 5 };
        let mut map = model.congestion_map(&chip, segments);
        for _ in 1..reps {
            map = model.congestion_map(&chip, segments);
        }
        let ms = t.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        println!(
            "{:<34} {:>8} {:>12.5} {:>12.3}",
            format!("fixed {p}x{p} um"),
            map.cell_count(),
            map.cost(),
            ms
        );
    }

    // The L/Z-shape ensemble of Lou et al. [3] at the paper pitch.
    {
        let model = LzShapeModel::new(pitch);
        let t = Instant::now();
        let reps = 20;
        let mut map = model.congestion_map(&chip, segments);
        for _ in 1..reps {
            map = model.congestion_map(&chip, segments);
        }
        let ms = t.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        println!(
            "{:<34} {:>8} {:>12.5} {:>12.3}",
            format!("lz-shape {}x{} um", pitch.0, pitch.0),
            map.values().len(),
            map.cost(),
            ms
        );
    }

    // Irregular-Grid, approximate (production) and exact (ablation).
    for (label, evaluator) in [
        ("irregular (Theorem 1 approx)", Evaluator::Approximate),
        ("irregular (exact Formula 3)", Evaluator::Exact),
    ] {
        let model = IrregularGridModel::new(pitch).with_evaluator(evaluator);
        let t = Instant::now();
        let reps = 20;
        let mut map = model.congestion_map(&chip, segments);
        for _ in 1..reps {
            map = model.congestion_map(&chip, segments);
        }
        let ms = t.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        println!(
            "{:<34} {:>8} {:>12.5} {:>12.3}",
            label,
            map.ir_cell_count(),
            map.cost(),
            ms
        );
    }

    Ok(())
}
