//! Quickstart: build a tiny circuit, pack it, and score its congestion
//! with both the fixed-grid baseline and the Irregular-Grid model.
//!
//! Run with: `cargo run --example quickstart`

use irgrid::congestion::{CongestionModel, FixedGridModel, IrregularGridModel};
use irgrid::floorplan::{pack, two_pin_segments, PinPlacer, PolishExpr};
use irgrid::geom::Um;
use irgrid::netlist::{Circuit, Module, ModuleId, Net};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hand-built four-module circuit.
    let circuit = Circuit::new(
        "quickstart",
        vec![
            Module::new("cpu", Um(400), Um(300))?,
            Module::new("cache", Um(250), Um(250))?,
            Module::new("dsp", Um(300), Um(200))?,
            Module::new("io", Um(150), Um(350))?,
        ],
        vec![
            Net::new("cpu_cache", vec![ModuleId(0), ModuleId(1)])?,
            Net::new("cpu_dsp", vec![ModuleId(0), ModuleId(2)])?,
            Net::new(
                "bus",
                vec![ModuleId(0), ModuleId(1), ModuleId(2), ModuleId(3)],
            )?,
            Net::new("dsp_io", vec![ModuleId(2), ModuleId(3)])?,
        ],
    )?;
    println!("circuit: {circuit}");

    // Pack the canonical initial Polish expression.
    let expr = PolishExpr::initial(circuit.modules().len());
    let placement = pack(&expr, &circuit);
    println!("expression: {expr}");
    println!(
        "chip: {} x {} = {:.3} mm^2 (dead space {:.1}%)",
        placement.chip().width(),
        placement.chip().height(),
        placement.area().as_mm2(),
        100.0 * placement.dead_space().as_f64() / placement.area().as_f64(),
    );
    for (id, module) in circuit.modules_with_ids() {
        println!(
            "  {:>6}: {}{}",
            module.name(),
            placement.module_rect(id),
            if placement.is_rotated(id) {
                " (rotated)"
            } else {
                ""
            },
        );
    }

    // Decompose nets into 2-pin segments and score congestion.
    let placer = PinPlacer::new(Um(30));
    let segments = two_pin_segments(&circuit, &placement, &placer);
    let wirelength: i64 = segments
        .iter()
        .map(|(a, b)| a.manhattan_distance(*b).0)
        .sum();
    println!(
        "segments: {} (total wirelength {wirelength} um)",
        segments.len()
    );

    let fixed = FixedGridModel::new(Um(30));
    let irregular = IrregularGridModel::new(Um(30));
    let fixed_map = fixed.congestion_map(&placement.chip(), &segments);
    let ir_map = irregular.congestion_map(&placement.chip(), &segments);

    println!("\n{}:", fixed.name());
    println!("  grids: {}", fixed_map.cell_count());
    println!("  peak cell congestion: {:.4}", fixed_map.peak());
    println!("  top-10% cost: {:.4}", fixed_map.cost());

    println!("{}:", irregular.name());
    println!(
        "  IR-grids: {} ({} x {})",
        ir_map.ir_cell_count(),
        ir_map.ir_cols(),
        ir_map.ir_rows()
    );
    println!("  peak density: {:.4}", ir_map.peak_density());
    println!("  top-10% cost: {:.4}", ir_map.cost());

    Ok(())
}
